"""Figure 23: load balancing as a continuous-optimization process.

"It plots the CPU utilization, number of LB violations, and number of
shard moves of a ZippyDB deployment, which all follow a diurnal pattern.
... a small number of new violations constantly emerge on different
servers due to the large system size and the ever-changing load ...
Despite the constant load changes, LB consistently keeps the P99 CPU
utilization under 80%."

We deploy a ZippyDB-like primary-secondary application whose per-shard
CPU load follows per-shard diurnal curves (distinct phases and
amplitudes, plus noise), let the orchestrator's periodic rebalancing run
for three scaled days, and sample the figure's three curves.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List

from ..core.orchestrator import OrchestratorConfig
from ..core.spec import (
    AppSpec,
    LoadBalancePolicy,
    ReplicationStrategy,
    uniform_shards,
)
from ..harness import SimCluster, deploy_app
from ..metrics.timeseries import TimeSeries, percentile
from ..sim.engine import every
from ..sim.rng import substream
from ..solver.local_search import SearchConfig
from .common import series_rows


@dataclass
class Fig23Result:
    avg_cpu: TimeSeries
    p99_cpu: TimeSeries
    violations: TimeSeries
    shard_moves: TimeSeries
    days: float

    def max_p99(self) -> float:
        return self.p99_cpu.max()

    def total_moves(self) -> int:
        return int(sum(v for _t, v in self.shard_moves))

    def violation_buckets(self) -> int:
        """How many samples saw at least one violation (they 'constantly
        emerge')."""
        return sum(1 for _t, v in self.violations if v > 0)


def run(servers: int = 30, shards: int = 200, replica_count: int = 3,
        day_length: float = 3_600.0, days: float = 3.0,
        mean_utilization: float = 0.45, seed: int = 0,
        sample_interval: float = 120.0) -> Fig23Result:
    rng = substream(seed, "fig23")
    cluster = SimCluster.build(
        regions=("prod",),
        machines_per_region=servers + 2,
        seed=seed,
        capacity={"cpu": 100.0, "storage": 100.0, "shard_count": 1000.0},
        capacity_jitter=0.2,
    )
    spec = AppSpec(
        name="fig23",
        shards=uniform_shards(shards, key_space=shards * 8,
                              replica_count=replica_count),
        replication=ReplicationStrategy.PRIMARY_SECONDARY,
        lb_policy=LoadBalancePolicy.MULTI_METRIC,
        lb_metrics=("cpu", "storage", "shard_count"),
        utilization_threshold=0.85,
        balance_band=0.07,
        spread_levels=(),
    )

    # Per-shard diurnal CPU loads.  The diurnal phase is *global* (user
    # activity is fleet-wide correlated); shards differ in magnitude
    # (log-normal skew), amplitude, and a small phase jitter — which is
    # what makes new violations keep emerging on different servers.
    engine = cluster.engine
    total_capacity = servers * 100.0
    base_per_replica = (mean_utilization * total_capacity
                        / (shards * replica_count))
    raw_scales = [rng.lognormvariate(0.0, 0.6) for _ in range(shards)]
    scale_norm = len(raw_scales) / sum(raw_scales)
    shard_params: Dict[str, tuple] = {}
    for index in range(shards):
        scale = raw_scales[index] * scale_norm
        amplitude = rng.uniform(0.3, 0.5)
        phase_jitter = rng.uniform(-0.05, 0.05) * day_length
        storage = base_per_replica * rng.uniform(0.5, 1.5)
        # Slow per-shard popularity drift (incommensurate period per
        # shard): load keeps redistributing *between* shards, which is
        # what makes "a small number of new violations constantly emerge
        # on different servers" (§8.4).
        drift_period = day_length * rng.uniform(1.3, 2.9)
        drift_phase = rng.uniform(0.0, drift_period)
        shard_params[f"shard{index}"] = (scale, amplitude, phase_jitter,
                                         storage, drift_period, drift_phase)

    def cpu_load(shard_id: str, time: float) -> float:
        (scale, amplitude, phase_jitter, _storage,
         drift_period, drift_phase) = shard_params[shard_id]
        wave = 1.0 + amplitude * math.sin(
            2.0 * math.pi * (time - phase_jitter) / day_length)
        drift = 1.0 + 0.25 * math.sin(
            2.0 * math.pi * (time - drift_phase) / drift_period)
        return base_per_replica * scale * wave * drift

    noise_rng = substream(seed, "fig23-noise")

    def base_loads(shard_id: str) -> Dict[str, float]:
        jitter = 1.0 + noise_rng.uniform(-0.05, 0.05)
        return {"cpu": cpu_load(shard_id, engine.now) * jitter,
                "storage": shard_params[shard_id][3]}

    # Average drift factor is 1.0 per shard over time, but instantaneous
    # totals wobble; keep the fleet mean near the target by folding the
    # drift's mean into base (documented approximation).

    orchestrator_config = OrchestratorConfig(
        load_poll_interval=30.0,
        rebalance_interval=60.0,
        failover_grace=120.0,
        search_config=SearchConfig(time_budget=3.0, rng_seed=seed),
    )
    app = deploy_app(cluster, spec, {"prod": servers},
                     base_loads=base_loads,
                     orchestrator_config=orchestrator_config,
                     settle=120.0)
    orchestrator = app.orchestrator

    avg_cpu = TimeSeries(name="avg_cpu")
    p99_cpu = TimeSeries(name="p99_cpu")
    violations = TimeSeries(name="violations")

    def sample() -> None:
        """True utilization from the live load functions (not the possibly
        stale reports the orchestrator balances on)."""
        usage: Dict[str, float] = {}
        for replica in orchestrator.table.all_replicas():
            if not replica.available:
                continue
            usage[replica.address] = (usage.get(replica.address, 0.0)
                                      + cpu_load(replica.shard_id, engine.now))
        utils: List[float] = []
        for address, record in orchestrator.servers.items():
            if not record.alive:
                continue
            capacity = record.machine.capacity.get("cpu", 100.0)
            utils.append(usage.get(address, 0.0) / capacity)
        if not utils:
            return
        mean_util = sum(utils) / len(utils)
        over_threshold = sum(1 for u in utils if u > 0.9)
        over_band = sum(1 for u in utils if u > mean_util + 0.1)
        now = engine.now
        avg_cpu.record(now, mean_util)
        p99_cpu.record(now, percentile(utils, 99.0))
        violations.record(now, over_threshold + over_band)

    every(engine, sample_interval, sample)
    cluster.run(until=engine.now + days * day_length)

    # The paper's violations curve is SM's own instrumentation: what the
    # allocator saw at each rebalance.  Merge it with externally sampled
    # violations (whichever is higher is the honest count).
    solver_seen = TimeSeries(name="violations")
    history = iter(orchestrator.rebalance_history)
    entry = next(history, None)
    for index, time in enumerate(violations.times):
        seen = 0
        while entry is not None and entry[0] <= time:
            seen = max(seen, entry[1])
            entry = next(history, None)
        solver_seen.record(time, max(seen, violations.values[index]))

    return Fig23Result(
        avg_cpu=avg_cpu,
        p99_cpu=p99_cpu,
        violations=solver_seen,
        shard_moves=orchestrator.move_counter.windowed(sample_interval),
        days=days,
    )


def format_report(result: Fig23Result) -> str:
    lines = [
        "Figure 23 — continuous load balancing over diurnal load",
        f"  simulated days      : {result.days:.0f} (scaled)",
        f"  mean CPU util       : {result.avg_cpu.mean():.2f}",
        f"  max P99 CPU util    : {result.max_p99():.2f} (paper: < 0.80)",
        f"  samples w/ violations: {result.violation_buckets()} of "
        f"{len(result.violations)} (they keep emerging)",
        f"  total shard moves   : {result.total_moves()}",
        "",
        "P99 CPU utilization:",
        series_rows(result.p99_cpu, value_label="p99 util"),
    ]
    return "\n".join(lines)
