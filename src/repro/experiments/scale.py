"""Figures 15 & 16: scale of SM applications and of mini-SMs.

Fig 15 is a scatter of (servers, shards) per application deployment; we
regenerate it from the synthetic fleet and check the published anchors
(max ≈19K servers / ≈2.6M shards; ~14% of deployments ≥ 1,000 servers).

Fig 16 partitions the same fleet across mini-SMs with the §6.1 rules
(partitions of ≤ hundreds of thousands of replicas; mini-SMs capped at
~1.5M replicas — the paper's largest runs ≈50K servers / 1.3M shards) and
plots the resulting mini-SM footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.mini_sm import (
    MiniSM,
    PartitionRegistry,
    plan_partition_footprints,
)
from ..workloads.fleet import SyntheticApp, generate_fleet, scale_scatter


@dataclass
class ScaleResult:
    app_scatter: List[Tuple[int, int]]       # Fig 15: (servers, shards)
    mini_sm_scatter: List[Tuple[int, int]]   # Fig 16: (servers, shards)
    mini_sm_count: int
    large_app_fraction: float                # deployments >= 1000 servers

    @property
    def max_app(self) -> Tuple[int, int]:
        return max(self.app_scatter, key=lambda p: p[0])

    @property
    def max_mini_sm(self) -> Tuple[int, int]:
        return max(self.mini_sm_scatter, key=lambda p: p[0])


def run(app_count: int = 500, seed: int = 0,
        max_replicas_per_partition: int = 200_000,
        replicas_per_mini_sm: int = 1_500_000) -> ScaleResult:
    apps = generate_fleet(app_count=app_count, seed=seed)
    scatter = scale_scatter(apps)
    large = sum(1 for servers, _shards in scatter if servers >= 1000)

    registry = PartitionRegistry(replicas_per_mini_sm=replicas_per_mini_sm)
    for app in apps:
        if not app.is_sm:
            continue
        replicas_per_shard = {
            "primary_only": 1,
        }.get(app.replication.value, 3)
        for footprint in plan_partition_footprints(
                app.name, app.servers, app.shards,
                replicas_per_shard=replicas_per_shard,
                max_replicas_per_partition=max_replicas_per_partition):
            registry.assign(footprint)

    mini_scatter = [(m.server_count, m.shard_count)
                    for m in registry.mini_sms]
    return ScaleResult(
        app_scatter=scatter,
        mini_sm_scatter=mini_scatter,
        mini_sm_count=len(registry.mini_sms),
        large_app_fraction=large / max(1, len(scatter)),
    )


def format_report(result: ScaleResult) -> str:
    max_servers, max_shards = result.max_app
    mini_servers, mini_shards = result.max_mini_sm
    lines = [
        "Figure 15 — scale of SM applications",
        f"  deployments            : {len(result.app_scatter)}",
        f"  largest (servers)      : {max_servers:,} servers"
        f" (paper: ~19K)",
        f"  largest (shards)       : {max(s for _x, s in result.app_scatter):,}"
        f" shards (paper: ~2.6M)",
        f"  >= 1000 servers        : {100 * result.large_app_fraction:.1f}%"
        f" (paper: 14%)",
        "",
        "Figure 16 — scale of mini-SMs",
        f"  mini-SMs               : {result.mini_sm_count}"
        f" (paper operates 139 + 48)",
        f"  largest mini-SM        : {mini_servers:,} servers /"
        f" {mini_shards:,} shards (paper: ~50K / ~1.3M)",
    ]
    return "\n".join(lines)
