"""Shared experiment plumbing: result reporting and scaling notes.

Every experiment module exposes ``run(...) -> <Figure>Result`` plus a
``format_report(result) -> str`` that prints the same series the paper's
figure shows.  Benchmarks assert on the result objects and print the
reports, building EXPERIMENTS.md's paper-vs-measured tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..metrics.timeseries import TimeSeries, format_table


def series_rows(series: TimeSeries, time_label: str = "t(s)",
                value_label: str = "value",
                max_rows: int = 40) -> str:
    """Render a time series as a table, downsampling long series evenly."""
    count = len(series)
    if count == 0:
        return f"{time_label}: (empty)"
    indices: Iterable[int]
    if count <= max_rows:
        indices = range(count)
    else:
        step = count / max_rows
        indices = sorted({int(i * step) for i in range(max_rows)} | {count - 1})
    rows = [(f"{series.times[i]:.1f}", f"{series.values[i]:.4g}")
            for i in indices]
    return format_table([time_label, value_label], rows)


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"


def compare_breakdown(measured: Dict[str, float],
                      published: Dict[str, float]) -> List[Tuple[str, str, str]]:
    """(category, paper, measured) rows for demographics tables."""
    rows = []
    for key in sorted(set(measured) | set(published)):
        rows.append((key,
                     percent(published.get(key, 0.0)),
                     percent(measured.get(key, 0.0))))
    return rows


def max_abs_error(measured: Dict[str, float],
                  published: Dict[str, float]) -> float:
    keys = set(measured) | set(published)
    return max(abs(measured.get(k, 0.0) - published.get(k, 0.0))
               for k in keys)
