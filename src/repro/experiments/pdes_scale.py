"""The 3-region fig18-scale PDES benchmark scenario.

A queue-service deployment spread over the paper's three regions, each
region serving its own phase-shifted diurnal client population (the
follow-the-sun shape of the fluid 10M-user scenario, but on the
per-request event path) and running its own staged daily upgrades.  The
scenario exists to exercise — and benchmark — region-parallel PDES: its
request traffic is region-local (shards are region-pinned, clients talk
to their own region), so the three region engines carry roughly equal
event load and the control plane is the only serialized phase.

Handler state is strictly region-local: one :class:`QueueServiceApp`
instance per region, dispatched by container region, so no two region
engines ever touch the same queue table — the scenario is deterministic
under any worker count (the ``workers=1`` vs ``workers=N`` digest-parity
gate in ``scripts/run_pdes_bench.py`` rests on this).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..app.client import WorkloadRecorder
from ..apps.queue_service import QueueServiceApp
from ..cluster.taskcontrol import OpKind, OpReason
from ..core.orchestrator import OrchestratorConfig
from ..core.spec import AppSpec, ReplicationStrategy, uniform_shards
from ..harness import SimCluster, deploy_app


@dataclass
class PdesScaleResult:
    requests_sent: int
    requests_failed: int
    overall_error_rate: float
    order_violations: int
    upgrades_run: int
    shard_moves: int
    per_region: Dict[str, Tuple[int, int]]  # region -> (sent, failed)
    wall_seconds: float
    events_processed: int
    # PDES diagnostics (all zero on a serial run):
    windows: int = 0
    deferred_events: int = 0
    clamped_events: int = 0

    def headline(self) -> Dict[str, object]:
        """The deterministic outcome fields — what the parity gates
        compare across serial / workers=1 / workers=N runs (wall clock
        and diagnostics excluded)."""
        return {
            "requests_sent": self.requests_sent,
            "requests_failed": self.requests_failed,
            "overall_error_rate": round(self.overall_error_rate, 12),
            "order_violations": self.order_violations,
            "upgrades_run": self.upgrades_run,
            "shard_moves": self.shard_moves,
            "per_region": {r: list(v) for r, v in
                           sorted(self.per_region.items())},
        }


def run(shards: int = 600, servers_per_region: int = 20,
        day_length: float = 1_800.0, days: int = 2,
        base_rate: float = 8.0, peak_rate: float = 32.0,
        seed: int = 0, parallel_regions: int = 0,
        regions: Sequence[str] = ("FRC", "PRN", "ODN")) -> PdesScaleResult:
    wall_start = time.perf_counter()
    region_list = list(regions)
    cluster = SimCluster.build(
        regions=tuple(region_list),
        machines_per_region=servers_per_region + 4,
        seed=seed,
        parallel_regions=parallel_regions,
    )
    key_space = shards * 8
    # Region-pinned shards (round-robin): keeps each queue's primary in
    # one region so request traffic — and queue state — stays local.
    preferences = {index: region_list[index % len(region_list)]
                   for index in range(shards)}
    spec = AppSpec(
        name="pdes-queue",
        shards=uniform_shards(shards, key_space=key_space,
                              preferred_regions=preferences),
        replication=ReplicationStrategy.PRIMARY_ONLY,
        max_concurrent_container_ops=max(1, servers_per_region // 10),
    )
    apps = {region: QueueServiceApp(spec) for region in region_list}

    def handler_factory(container):
        return apps[container.machine.region].handler_factory(container)

    orchestrator_config = OrchestratorConfig(
        failover_grace=240.0,
        rebalance_interval=120.0,
        drain_concurrency=4,
        drain_pacing=0.2,
    )
    app = deploy_app(
        cluster, spec,
        {region: servers_per_region for region in region_list},
        handler_factory=handler_factory,
        orchestrator_config=orchestrator_config,
        settle=60.0)

    from ..workloads.load import DiurnalCurve
    horizon = days * day_length
    start = cluster.engine.now
    recorders: Dict[str, WorkloadRecorder] = {}
    for offset, region in enumerate(region_list):
        recorder = WorkloadRecorder.with_bucket(day_length / 48.0)
        recorders[region] = recorder
        curve = DiurnalCurve(
            base=base_rate, peak=peak_rate, period=day_length,
            # Follow-the-sun: each region's peak a third of a day later.
            phase=day_length * (0.25 + offset / len(region_list)))
        client = app.client(cluster, region, attempts=2, rpc_timeout=0.5,
                            retry_backoff=0.2)
        # Each region's clients enqueue onto their own region's shards.
        client.run_workload(
            duration=horizon, rate=curve,
            key_fn=lambda rng, o=offset: (
                # Pick a shard pinned to this region, then a key in it.
                (rng.randrange(shards // len(region_list))
                 * len(region_list) + o) * 8 + rng.randrange(8)),
            recorder=recorder,
            payload_fn=lambda key: {"op": "enqueue", "queue": key,
                                    "message": f"m{key}"})

    # Staged daily upgrades per region, staggered so no two regions'
    # full-fleet waves coincide.
    upgrades_run = 0
    concurrency = max(1, servers_per_region // 10)
    restart_duration = 30.0

    def canary(region: str) -> None:
        nonlocal upgrades_run
        twine = cluster.twines[region]
        containers = [c for c in twine.job_containers(spec.name)
                      if c.running]
        for container in containers[:max(1, len(containers) // 10)]:
            twine.submit_op(OpKind.RESTART, container, OpReason.UPGRADE)
        upgrades_run += 1

    def full(region: str) -> None:
        nonlocal upgrades_run
        try:
            cluster.twines[region].start_rolling_upgrade(
                spec.name, concurrency, restart_duration)
        except RuntimeError:
            return
        upgrades_run += 1

    for day in range(days):
        for offset, region in enumerate(region_list):
            day_start = start + day * day_length
            stagger = day_length * 0.12 * offset
            cluster.engine.call_at(day_start + day_length * 0.20 + stagger,
                                   lambda r=region: canary(r))
            cluster.engine.call_at(day_start + day_length * 0.40 + stagger,
                                   lambda r=region: full(r))

    cluster.run(until=start + horizon + 120.0)

    sent = sum(int(round(r.sent)) for r in recorders.values())
    failed = sum(int(round(r.failed)) for r in recorders.values())
    events = cluster.engine.processed_events + sum(
        e.processed_events for e in cluster.engines.values()
        if e is not cluster.engine)
    pdes = cluster.pdes
    return PdesScaleResult(
        requests_sent=sent,
        requests_failed=failed,
        overall_error_rate=failed / max(1, sent),
        order_violations=sum(a.order_violations for a in apps.values()),
        upgrades_run=upgrades_run,
        shard_moves=app.orchestrator.executor.stats.total_moves,
        per_region={region: (int(round(r.sent)), int(round(r.failed)))
                    for region, r in recorders.items()},
        wall_seconds=time.perf_counter() - wall_start,
        events_processed=events,
        windows=pdes.windows if pdes is not None else 0,
        deferred_events=pdes.deferred_applied if pdes is not None else 0,
        clamped_events=pdes.clamped if pdes is not None else 0,
    )


def format_report(result: PdesScaleResult) -> str:
    lines = [
        "PDES scale — 3-region queue service, follow-the-sun diurnal",
        f"  requests sent       : {result.requests_sent}",
        f"  overall error rate  : {result.overall_error_rate:.5f}",
        f"  order violations    : {result.order_violations}",
        f"  upgrades run        : {result.upgrades_run}",
        f"  shard moves         : {result.shard_moves}",
        f"  events processed    : {result.events_processed}",
        f"  wall seconds        : {result.wall_seconds:.2f}",
    ]
    if result.windows:
        lines.append(
            f"  pdes: {result.windows} windows, "
            f"{result.deferred_events} cross-region events, "
            f"{result.clamped_events} clamped")
    for region, (sent, failed) in sorted(result.per_region.items()):
        lines.append(f"  {region}: sent={sent} failed={failed}")
    return "\n".join(lines)
