"""Control-plane scale benchmark (the Figs 15/16 regime, §6).

Measures, at shard counts up to 10^6, the three costs the delta
dissemination work targets:

* **Publish ops/s** — how fast the orchestrator-side pipeline
  (``AssignmentTable.snapshot_delta`` → ``ServiceDiscovery.publish`` →
  per-subscriber delivery) turns around steady-state publishes, swept
  over the number of shards mutated between publishes (the dirty count).
  With O(changed) snapshots this should be roughly flat in app size and
  linear in dirty count; before, it was linear in app size regardless.
* **Delta vs full wire bytes** — the modeled serialized size of what a
  delta publish ships versus a full snapshot (``delta_wire_bytes`` /
  ``map_wire_bytes``), the Fig 15-style dissemination saving.
* **Frontend routes/s** — the mini-SM layer's shard → partition → mini-SM
  lookup through the lazily built index, against an inline reimplementation
  of the old O(partitions × shards) scan as the baseline.

Every phase is deterministic (seeded RNG, virtual-time engine); only the
wall-clock throughput figures vary run to run.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Sequence

from ..core.mini_sm import (
    ApplicationManager,
    ApplicationRegistry,
    Frontend,
    PartitionRegistry,
)
from ..core.shard_map import (
    AssignmentTable,
    ReplicaState,
    Role,
    delta_wire_bytes,
    map_wire_bytes,
)
from ..core.spec import AppSpec, ReplicationStrategy, uniform_shards
from ..discovery.service_discovery import ServiceDiscovery
from ..sim.engine import Engine

#: Default sweep: the paper's §6 operating points.
DEFAULT_SHARD_COUNTS = (10_000, 100_000, 1_000_000)
#: Shards mutated between steady-state publishes.
DEFAULT_DIRTY_COUNTS = (1, 64, 1024)
#: Mini-SM pool sizes to bin-pack the partitions into.
DEFAULT_MINI_SM_COUNTS = (4, 16)


class _DeltaCounter:
    """Delta-aware subscriber callback: counts deliveries by kind."""

    __slots__ = ("deltas", "fulls")

    def __init__(self) -> None:
        self.deltas = 0
        self.fulls = 0

    def __call__(self, shard_map, delta) -> None:
        if delta is None:
            self.fulls += 1
        else:
            self.deltas += 1


def _build_spec(shards: int) -> AppSpec:
    return AppSpec(
        name="scale",
        shards=uniform_shards(shards, key_space=shards * 16),
        replication=ReplicationStrategy.PRIMARY_ONLY,
    )


def _populate(table: AssignmentTable, spec: AppSpec,
              shards_per_server: int) -> List:
    server_count = max(1, len(spec.shards) // shards_per_server)
    replicas = []
    for index, shard in enumerate(spec.shards):
        replicas.append(table.add(
            shard.shard_id, f"srv/{index % server_count}", Role.PRIMARY,
            state=ReplicaState.READY))
    return replicas


def _route_linear(partitions, partition_registry, app_name: str,
                  shard_id: str):
    """The pre-index Frontend.route: scan every partition's spec."""
    for partition in partitions:
        try:
            partition.spec.shard(shard_id)
        except KeyError:
            continue
        return partition_registry.lookup(partition.partition_id)
    raise KeyError(f"{app_name}: shard {shard_id!r} not in any partition")


def run_point(shards: int,
              dirty_counts: Sequence[int] = DEFAULT_DIRTY_COUNTS,
              mini_sm_counts: Sequence[int] = DEFAULT_MINI_SM_COUNTS,
              rounds: int = 30,
              subscribers: int = 8,
              shards_per_server: int = 100,
              route_lookups: int = 50_000,
              linear_lookups: Optional[int] = None,
              partition_target: int = 128,
              seed: int = 0) -> Dict[str, object]:
    """One sweep point: build an app of ``shards`` shards and measure
    publish throughput, wire bytes, and frontend routing throughput."""
    rng = random.Random(seed)
    point: Dict[str, object] = {"shards": shards}

    # -- build ---------------------------------------------------------------
    t0 = time.perf_counter()
    spec = _build_spec(shards)
    table = AssignmentTable(spec)
    replicas = _populate(table, spec, shards_per_server)
    point["build_seconds"] = round(time.perf_counter() - t0, 4)

    engine = Engine()
    discovery = ServiceDiscovery(engine, base_delay=0.0, jitter=0.0,
                                 rng=random.Random(seed))
    counters = [_DeltaCounter() for _ in range(subscribers)]
    for counter in counters:
        discovery.subscribe(spec.name, counter, deltas=True)

    # -- initial full publish ------------------------------------------------
    t0 = time.perf_counter()
    snapshot, delta = table.snapshot_delta()
    discovery.publish(snapshot, delta=delta)
    engine.run()
    point["full_publish_seconds"] = round(time.perf_counter() - t0, 4)
    full_bytes = map_wire_bytes(snapshot)
    point["full_map_bytes"] = full_bytes

    # -- steady-state delta publishes, swept over dirty count ----------------
    sweeps = []
    for dirty in dirty_counts:
        if dirty > shards:
            continue
        sample = rng.sample(replicas, dirty)
        flip = 0

        def publish_once():
            nonlocal flip
            flip += 1
            suffix = "a" if flip % 2 else "b"
            for offset, replica in enumerate(sample):
                table.relocate(replica.replica_id,
                               f"srv/m{suffix}{offset}")
            snapshot, delta = table.snapshot_delta()
            discovery.publish(snapshot, delta=delta)
            engine.run()
            return delta

        publish_once()  # warm the mutated chunks
        delta_bytes = 0
        t0 = time.perf_counter()
        for _ in range(rounds):
            delta = publish_once()
            delta_bytes += delta_wire_bytes(delta)
        elapsed = time.perf_counter() - t0
        sweeps.append({
            "dirty": dirty,
            "publishes_per_sec": round(rounds / elapsed, 1),
            "delta_bytes": delta_bytes // rounds,
            "bytes_saved_ratio": round(
                full_bytes / max(1, delta_bytes // rounds), 1),
        })
    point["publish_sweep"] = sweeps
    assert all(counter.fulls == 0 for counter in counters), \
        "steady-state publishes must all disseminate as deltas"
    point["delta_deliveries"] = counters[0].deltas

    # -- frontend aggregation, swept over mini-SM pool sizes -----------------
    replicas_per_partition = max(1, shards // partition_target)
    manager = ApplicationManager(
        max_replicas_per_partition=replicas_per_partition)
    partitions = manager.partition_app(spec, server_count=max(
        1, shards // shards_per_server))
    app_registry = ApplicationRegistry()
    app_registry.register(spec.name, partitions)
    point["partitions"] = len(partitions)
    shard_ids = [s.shard_id for s in spec.shards]
    lookups = [rng.choice(shard_ids) for _ in range(route_lookups)]

    mini_sweeps = []
    indexed_elapsed = None
    partition_registry = None
    for target_minis in mini_sm_counts:
        partition_registry = PartitionRegistry(
            replicas_per_mini_sm=max(1, shards // target_minis))
        t0 = time.perf_counter()
        for partition in partitions:
            partition_registry.assign(partition)
        assign_elapsed = time.perf_counter() - t0

        frontend = Frontend(app_registry, partition_registry)
        frontend.route(spec.name, lookups[0])  # build index outside timing
        t0 = time.perf_counter()
        for shard_id in lookups:
            frontend.route(spec.name, shard_id)
        indexed_elapsed = time.perf_counter() - t0
        mini_sweeps.append({
            "target_mini_sms": target_minis,
            "mini_sms": len(partition_registry.mini_sms),
            "assign_seconds": round(assign_elapsed, 4),
            "frontend_routes_per_sec": round(
                route_lookups / indexed_elapsed, 1),
        })
    point["mini_sm_sweep"] = mini_sweeps
    point["frontend_routes_per_sec"] = mini_sweeps[-1][
        "frontend_routes_per_sec"]

    if linear_lookups is None:
        # The scan is O(partitions); keep the baseline measurement short.
        linear_lookups = max(200, min(5000, route_lookups // len(partitions)))
    t0 = time.perf_counter()
    for shard_id in lookups[:linear_lookups]:
        _route_linear(partitions, partition_registry, spec.name, shard_id)
    linear_elapsed = time.perf_counter() - t0
    point["frontend_linear_routes_per_sec"] = round(
        linear_lookups / linear_elapsed, 1)
    point["frontend_speedup_vs_linear"] = round(
        (route_lookups / indexed_elapsed)
        / max(1e-9, linear_lookups / linear_elapsed), 1)
    return point


def run_sweep(shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
              **kwargs) -> Dict[str, object]:
    """The full sweep recorded as BENCH_sim.json's ``scale`` section."""
    t0 = time.perf_counter()
    points = [run_point(count, **kwargs) for count in shard_counts]
    return {
        "shard_counts": list(shard_counts),
        "points": points,
        "wall_seconds": round(time.perf_counter() - t0, 2),
    }
