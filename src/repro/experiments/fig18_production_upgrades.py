"""Figure 18: production view — no client errors during daily upgrades.

"Facebook's instant-messaging product uses a queue service to guarantee
in-order message delivery ...  The service does a rolling upgrade every
weekday.  It starts with small-scale upgrades, which cause the small
spikes in the 'shard moves' curve ... after three hours, it progresses
to full-scale upgrades, which cause the big spikes.  Despite the large
number of concurrent shard moves, the 'client error rate' curve hardly
changes."

We run the queue-service example over two (scaled) days of diurnal
traffic, with a staged rolling upgrade per day (a small canary upgrade
followed by the full-fleet upgrade), and record the three curves of the
figure: client request rate, client error rate, and shard moves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..app.client import WorkloadRecorder
from ..apps.queue_service import QueueServiceApp
from ..core.orchestrator import OrchestratorConfig
from ..core.spec import AppSpec, ReplicationStrategy, uniform_shards
from ..harness import SimCluster, deploy_app
from ..metrics.timeseries import TimeSeries
from ..workloads.load import DiurnalCurve
from .common import series_rows


@dataclass
class Fig18Result:
    request_rate: TimeSeries      # requests per bucket
    error_rate: TimeSeries        # errors / requests per bucket
    shard_moves: TimeSeries       # moves per bucket
    overall_error_rate: float
    order_violations: int
    upgrades_run: int

    def peak_moves(self) -> float:
        return self.shard_moves.max() if len(self.shard_moves) else 0.0

    def max_error_rate(self) -> float:
        return self.error_rate.max() if len(self.error_rate) else 0.0


def run(shards: int = 400, servers: int = 20, day_length: float = 3_600.0,
        days: int = 2, base_rate: float = 10.0, peak_rate: float = 40.0,
        canary_fraction: float = 0.1, seed: int = 0,
        traffic: str = "event", epoch: float = 5.0,
        parallel_regions: int = 0) -> Fig18Result:
    """``day_length`` compresses the diurnal period (default: 1h per
    simulated 'day'); upgrade cadence and shapes are unchanged.

    ``traffic`` selects the per-request path (``"event"``) or the hybrid
    fluid engine (``"fluid"``, advancing flows every ``epoch`` seconds);
    both land outcomes in the same recorder, so the derived curves and
    headline numbers are comparable across modes.
    """
    if traffic not in ("event", "fluid"):
        raise ValueError(f"unknown traffic mode {traffic!r}")

    cluster = SimCluster.build(
        regions=("FRC",),
        machines_per_region=servers + 4,
        seed=seed,
        parallel_regions=parallel_regions,
    )
    spec = AppSpec(
        name="queue",
        shards=uniform_shards(shards, key_space=shards * 8),
        replication=ReplicationStrategy.PRIMARY_ONLY,
        max_concurrent_container_ops=max(1, servers // 10),
    )
    queue_app = QueueServiceApp(spec)
    orchestrator_config = OrchestratorConfig(
        failover_grace=240.0,
        rebalance_interval=120.0,
        drain_concurrency=4,
        drain_pacing=0.2,
    )
    app = deploy_app(cluster, spec, {"FRC": servers},
                     handler_factory=queue_app.handler_factory,
                     orchestrator_config=orchestrator_config,
                     settle=60.0)

    recorder = WorkloadRecorder.with_bucket(day_length / 48.0)
    curve = DiurnalCurve(base=base_rate, peak=peak_rate, period=day_length,
                         phase=day_length / 4.0)
    horizon = days * day_length

    def key_fn(rng) -> int:
        return rng.randrange(shards * 8)

    start = cluster.engine.now
    if traffic == "fluid":
        fluid = app.fluid_client(cluster, "FRC")
        fluid.run_workload(duration=horizon, rate=curve, recorder=recorder,
                           epoch=epoch)
    else:
        client = app.client(cluster, "FRC", attempts=2, rpc_timeout=0.5,
                            retry_backoff=0.2)
        client.run_workload(
            duration=horizon, rate=curve, key_fn=key_fn, recorder=recorder,
            payload_fn=lambda key: {"op": "enqueue", "queue": key,
                                    "message": f"m{key}"})

    # Staged daily upgrades: canary at 25% of the day, full at 37.5%.
    upgrades_run = 0
    twine = cluster.twines["FRC"]
    concurrency = max(1, servers // 10)
    restart_duration = 30.0

    def canary(day_index: int) -> None:
        nonlocal upgrades_run
        containers = [c for c in twine.job_containers(spec.name)
                      if c.running]
        canary_count = max(1, int(len(containers) * canary_fraction))
        for container in containers[:canary_count]:
            from ..cluster.taskcontrol import OpKind, OpReason
            twine.submit_op(OpKind.RESTART, container, OpReason.UPGRADE)
        upgrades_run += 1

    def full(day_index: int) -> None:
        nonlocal upgrades_run
        try:
            twine.start_rolling_upgrade(spec.name, concurrency,
                                        restart_duration)
        except RuntimeError:
            return
        upgrades_run += 1

    for day in range(days):
        cluster.engine.call_at(start + day * day_length + day_length * 0.25,
                               lambda d=day: canary(d))
        cluster.engine.call_at(start + day * day_length + day_length * 0.375,
                               lambda d=day: full(d))

    cluster.run(until=start + horizon + 120.0)

    # Derive the three curves, bucketed like the figure.
    bucket = recorder.success.width
    request_rate = TimeSeries(name="request_rate")
    error_rate = TimeSeries(name="error_rate")
    for index in recorder.success.buckets():
        ok, failed = recorder.success.totals(index)
        request_rate.record((index + 0.5) * bucket, ok + failed)
        error_rate.record((index + 0.5) * bucket,
                          failed / max(1, ok + failed))
    moves = app.orchestrator.move_counter.windowed(bucket)

    total = recorder.succeeded + recorder.failed
    return Fig18Result(
        request_rate=request_rate,
        error_rate=error_rate,
        shard_moves=moves,
        overall_error_rate=recorder.failed / max(1, total),
        order_violations=queue_app.order_violations,
        upgrades_run=upgrades_run,
    )


def format_report(result: Fig18Result) -> str:
    lines = [
        "Figure 18 — diurnal traffic, daily staged upgrades, flat errors",
        f"  upgrades run        : {result.upgrades_run}",
        f"  overall error rate  : {result.overall_error_rate:.5f}",
        f"  max bucket error    : {result.max_error_rate():.5f}",
        f"  peak shard moves    : {result.peak_moves():.0f} per bucket",
        "  paper shape: request rate diurnal; move spikes at upgrades;"
        " error rate hardly changes",
        "",
        "shard moves per bucket:",
        series_rows(result.shard_moves, value_label="moves"),
    ]
    return "\n".join(lines)
