"""§2.5's AdEvents capacity claim: regional vs geo-distributed deployment.

"Initially, they were statically sharded, used regional deployments, and
needed standby deployments in multiple regions to guard against
whole-region outages.  The standby deployments often remained
underutilized.  They were converted to primary-only SM applications,
using geo-distributed deployments.  Thanks to better load balancing,
flexible shard placement, and dynamic shard migration across regions,
SM helped reduce their machine usage by 67%."

We compute both deployments' machine counts under the same availability
requirement (survive one whole-region outage):

* **regional/static**: every region holds a *complete* copy of all
  shards (a serving copy plus enough standby copies that losing any one
  region leaves a full copy elsewhere), and static sharding cannot
  balance load — servers must be provisioned for the hottest shard
  assignment, adding imbalance headroom.
* **geo-distributed/SM**: one copy of the shards total, spread over all
  regions; after a region failure its share of shards redistributes into
  other regions' headroom, so the fleet needs only
  ``1 / (regions - 1)`` spare capacity plus the (small) LB imbalance.

The saving grows with the number of regions and with shard-load skew;
at the paper's scale it lands near the reported two-thirds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..sim.rng import skewed_loads, substream


@dataclass
class CapacityPlan:
    label: str
    servers_per_region: int
    regions: int

    @property
    def total_servers(self) -> int:
        return self.servers_per_region * self.regions


@dataclass
class AdEventsCapacityResult:
    regional: CapacityPlan
    geo: CapacityPlan
    shard_count: int
    load_skew: float
    balanced_servers: int  # servers needed for the full load, perfectly LB'd

    @property
    def saving(self) -> float:
        """Fraction of machines saved by converting to SM geo (paper: 67%)."""
        return 1.0 - self.geo.total_servers / self.regional.total_servers


def _servers_for_load(total_load: float, server_capacity: float,
                      target_utilization: float) -> int:
    return max(1, math.ceil(total_load
                            / (server_capacity * target_utilization)))


def _static_imbalance_factor(shard_loads: List[float], servers: int) -> float:
    """How much headroom static (modulo) sharding wastes: the hottest
    server's load relative to a perfectly balanced assignment."""
    if servers < 1:
        return 1.0
    buckets = [0.0] * servers
    for index, load in enumerate(shard_loads):
        buckets[index % servers] += load
    mean = sum(buckets) / servers
    return max(buckets) / mean if mean > 0 else 1.0


def run(regions: int = 5, regional_copies: int = 3, shards: int = 2_000,
        load_skew: float = 20.0,
        mean_shard_load: float = 1.0, server_capacity: float = 40.0,
        target_utilization: float = 0.85, seed: int = 0
        ) -> AdEventsCapacityResult:
    """``regional_copies``: the pre-SM posture of one serving copy plus
    standby copies in other regions (two standbys by default)."""
    rng = substream(seed, "adevents-capacity")
    shard_loads = skewed_loads(rng, shards, skew=load_skew,
                               mean=mean_shard_load)
    total_load = sum(shard_loads)

    # Geo-distributed SM: one copy globally, balanced by the allocator
    # (imbalance ≈ 1 after LB), plus 1/(R-1) region-outage headroom.
    balanced_servers = _servers_for_load(total_load, server_capacity,
                                         target_utilization)
    outage_headroom = 1.0 + 1.0 / max(1, regions - 1)
    geo_total = math.ceil(balanced_servers * outage_headroom)
    geo = CapacityPlan(label="SM geo-distributed",
                       servers_per_region=-(-geo_total // regions),
                       regions=regions)

    # Regional/static: a complete copy *per region* (the pre-SM AdEvents
    # posture: serving copy + regional standbys), each copy provisioned
    # for static sharding's imbalance.
    per_copy_balanced = _servers_for_load(total_load, server_capacity,
                                          target_utilization)
    imbalance = _static_imbalance_factor(shard_loads, per_copy_balanced)
    per_copy = math.ceil(per_copy_balanced * imbalance)
    regional = CapacityPlan(label="static regional",
                            servers_per_region=per_copy,
                            regions=min(regions, regional_copies))

    return AdEventsCapacityResult(
        regional=regional,
        geo=geo,
        shard_count=shards,
        load_skew=load_skew,
        balanced_servers=balanced_servers,
    )


def format_report(result: AdEventsCapacityResult) -> str:
    lines = [
        "AdEvents capacity (§2.5): regional/static vs SM geo-distributed",
        f"  shards                  : {result.shard_count} "
        f"(load skew {result.load_skew:.0f}x)",
        f"  static regional         : {result.regional.servers_per_region} "
        f"servers x {result.regional.regions} copies = "
        f"{result.regional.total_servers}",
        f"  SM geo-distributed      : {result.geo.total_servers} total "
        f"(~{result.geo.servers_per_region}/region)",
        f"  machines saved          : {result.saving:.0%} (paper: 67%)",
    ]
    return "\n".join(lines)
