"""Figure 2: machines used by SM applications, 2012–2021.

Production adoption data; we reproduce it as a logistic adoption model
calibrated to the paper's two anchors — deployment in 2012 and "over one
million machines" by 2021 — and cross-check against the synthetic fleet's
total SM server usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..workloads.fleet import adoption_curve, generate_fleet


@dataclass
class Fig02Result:
    curve: List[Tuple[int, float]]
    fleet_sm_machines: int

    @property
    def final_machines(self) -> float:
        return self.curve[-1][1]

    @property
    def crossed_100k_year(self) -> int:
        for year, machines in self.curve:
            if machines >= 100_000:
                return year
        return self.curve[-1][0]


def run(app_count: int = 500, seed: int = 0) -> Fig02Result:
    years = list(range(2012, 2022))
    curve = adoption_curve(years)
    fleet = generate_fleet(app_count=app_count, seed=seed)
    sm_machines = sum(app.servers for app in fleet if app.is_sm)
    return Fig02Result(curve=curve, fleet_sm_machines=sm_machines)


def format_report(result: Fig02Result) -> str:
    lines = ["Figure 2 — machines used by SM applications",
             "  year  machines"]
    for year, machines in result.curve:
        lines.append(f"  {year}  {machines:12,.0f}")
    lines.append(f"  final: {result.final_machines:,.0f} "
                 "(paper: over one million)")
    lines.append(f"  synthetic fleet SM machines: "
                 f"{result.fleet_sm_machines:,}")
    return "\n".join(lines)
