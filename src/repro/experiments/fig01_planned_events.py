"""Figure 1: planned container stops vs unplanned failures (≈1000x apart).

We run a fleet for N simulated days with production-calibrated cadences:

* every job is upgraded daily (a rolling restart of all its containers);
* every machine gets maintenance roughly monthly ("SM gracefully handles
  millions of machine and network maintenance events per month" over a
  few million machines, §8.1);
* unplanned crashes follow an exponential MTBF of a few machine-years.

With those rates, planned:unplanned lands at roughly three orders of
magnitude — the paper's headline observation falls out of the cadence
arithmetic, which this experiment makes explicit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.maintenance import MaintenanceSchedule
from ..cluster.topology import build_topology
from ..cluster.twine import Twine, TwineConfig
from ..sim.engine import Engine
from ..sim.failures import CrashInjector
from ..sim.rng import substream

DAY = 86_400.0


@dataclass
class Fig01Result:
    planned_stops: int
    unplanned_stops: int
    simulated_days: float

    @property
    def ratio(self) -> float:
        return self.planned_stops / max(1, self.unplanned_stops)


def run(machines: int = 120, jobs: int = 4, days: float = 60.0,
        machine_mtbf_days: float = 900.0, repair_minutes: float = 30.0,
        seed: int = 0) -> Fig01Result:
    engine = Engine()
    topology = build_topology(["prod"], machines_per_region=machines,
                              rng=substream(seed, "fig01-topology"))
    twine = Twine(engine, "prod", topology.machines,
                  config=TwineConfig(negotiation_interval=30.0),
                  rng=substream(seed, "fig01-twine"))
    per_job = machines // jobs
    job_names = []
    for index in range(jobs):
        job = f"job{index}"
        twine.create_job(job, per_job)
        job_names.append(job)
    engine.run(until=60.0)  # containers come up

    schedule = MaintenanceSchedule(
        engine=engine,
        twine=twine,
        rng=substream(seed, "fig01-schedule"),
        upgrade_interval=DAY,
        maintenance_interval=30 * DAY,
        restart_duration=60.0,
    )
    schedule.start(job_names)

    injector = CrashInjector(
        engine=engine,
        rng=substream(seed, "fig01-crashes"),
        mtbf=machine_mtbf_days * DAY,
        repair_time=repair_minutes * 60.0,
        on_fail=lambda machine_id: twine.fail_machine(machine_id),
        on_repair=lambda machine_id: twine.repair_machine(machine_id),
    )
    injector.start([m.machine_id for m in topology.machines])

    engine.run(until=60.0 + days * DAY)
    return Fig01Result(
        planned_stops=twine.container_stops_planned,
        unplanned_stops=twine.container_stops_unplanned,
        simulated_days=days,
    )


def format_report(result: Fig01Result) -> str:
    lines = [
        "Figure 1 — planned vs unplanned container stops",
        f"  simulated days    : {result.simulated_days:.0f}",
        f"  planned stops     : {result.planned_stops}",
        f"  unplanned stops   : {result.unplanned_stops}",
        f"  planned/unplanned : {result.ratio:.0f}x   (paper: ~1000x)",
    ]
    return "\n".join(lines)
