"""Figure 22: the §5.3 optimizations vs the unoptimized baseline.

Paper: on the 75K-shard problem, the optimized solver converges quickly,
while "without the optimization, the allocator cannot even finish in 300
seconds and the resulting solution requires 22% more shard moves."

The ablated optimizations are grouped server sampling + domain-knowledge
targeting, large-shards-first ordering, equivalence classes, priority
batching and swaps (``SearchConfig.without_optimizations()``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..metrics.profiler import Profiler
from ..metrics.timeseries import TimeSeries
from ..solver.local_search import SearchConfig
from ..workloads.snapshots import (
    PAPER_SCALES,
    SnapshotScale,
    attach_zippydb_goals,
    scaled,
    zippydb_snapshot,
)


@dataclass
class SolverArm:
    label: str
    initial_violations: int
    final_violations: int
    solve_time: float
    moves: int
    timed_out: bool
    trace: TimeSeries
    evaluations: int = 0
    profile: Profiler = None  # per-stage solver timings (SolveResult.profile)

    @property
    def solved(self) -> bool:
        return self.final_violations == 0


@dataclass
class Fig22Result:
    optimized: SolverArm
    baseline: SolverArm

    @property
    def extra_move_fraction(self) -> float:
        """Baseline moves relative to optimized (paper: +22%)."""
        if self.optimized.moves == 0:
            return float("inf")
        return self.baseline.moves / self.optimized.moves - 1.0


def _solve(label: str, config: SearchConfig, scale: SnapshotScale,
           seed: int) -> SolverArm:
    problem = zippydb_snapshot(scale, seed=seed)
    rebalancer = attach_zippydb_goals(problem)
    initial = rebalancer.violations()
    result = rebalancer.solve(config)
    return SolverArm(
        label=label,
        initial_violations=initial,
        final_violations=rebalancer.violations(),
        solve_time=result.solve_time,
        moves=result.moves + result.swaps,
        timed_out=result.timed_out,
        trace=result.trace,
        evaluations=result.evaluations,
        profile=result.profile,
    )


def run(factor: int = 5, seed: int = 0,
        time_budget: float = 30.0) -> Fig22Result:
    scale = scaled(PAPER_SCALES, factor=factor)[0]  # the 75K-shard point
    optimized = _solve("optimized",
                       SearchConfig(time_budget=time_budget, rng_seed=seed),
                       scale, seed)
    baseline = _solve(
        "baseline",
        SearchConfig(time_budget=time_budget,
                     rng_seed=seed).without_optimizations(),
        scale, seed)
    return Fig22Result(optimized=optimized, baseline=baseline)


def format_report(result: Fig22Result) -> str:
    def row(arm: SolverArm) -> str:
        status = "timed out" if arm.timed_out else "converged"
        return (f"  {arm.label:10s}: {arm.initial_violations:5d} -> "
                f"{arm.final_violations:4d} violations in "
                f"{arm.solve_time:6.2f}s, {arm.moves:6d} moves ({status})")

    lines = [
        "Figure 22 — optimized vs baseline local search",
        row(result.optimized),
        row(result.baseline),
        f"  baseline extra moves: {100 * result.extra_move_fraction:+.0f}% "
        "(paper: +22%, and baseline cannot finish in 300 s)",
    ]
    for arm in (result.optimized, result.baseline):
        if arm.profile is None:
            continue
        rate = arm.evaluations / arm.solve_time if arm.solve_time > 0 else 0.0
        lines.append("")
        lines.append(f"  profile — {arm.label} ({rate:,.0f} evaluations/s):")
        lines.append(arm.profile.format(total=arm.solve_time, indent="    "))
    return "\n".join(lines)
