"""Figure 20: AppShards follow DBShards across regions to restore latency.

"All accesses to a given SQL database shard (so-called DBShard) must go
through the same application shard (so-called AppShard).  A pair of
DBShard and AppShard should always run in the same region to minimize
latency.  ... an administrator initiates the first batch of DBShard
moves across four regions, which causes a spike in latency ... The
administrator updates the regional placement preference for the impacted
AppShards, which triggers SM to move the AppShards to co-locate with
their DBShards.  ... Half an hour later, the administrator initiates the
second batch of DBShard moves and the process repeats."

The SQL database is "not managed by SM": DBShards here are a static
region table mutated by admin events.  AppShards are a primary-only SM
application whose per-shard region preferences the admin updates after
each batch; SM's affinity goal does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..core.orchestrator import OrchestratorConfig
from ..core.spec import AppSpec, ReplicationStrategy, uniform_shards
from ..harness import SimCluster, deploy_app
from ..metrics.timeseries import TimeSeries
from ..sim.engine import every
from .common import series_rows

REGIONS = ("FRC", "PRN", "ODN", "LLA")


@dataclass
class Fig20Result:
    latency: TimeSeries           # mean AppShard<->DBShard latency (ms)
    app_shard_moves: TimeSeries   # SM migrations per bucket
    db_shard_moves: TimeSeries    # admin-initiated moves per bucket
    batches: int

    def latency_at(self, time: float) -> float:
        return self.latency.value_at(time)


def run(shard_count: int = 24, servers_per_region: int = 4,
        batch_times: tuple = (300.0, 900.0), batch_size: int = 8,
        horizon: float = 1_500.0, sample_interval: float = 10.0,
        seed: int = 0) -> Fig20Result:
    cluster = SimCluster.build(
        regions=REGIONS,
        machines_per_region=servers_per_region + 2,
        seed=seed,
    )
    # DBShards: a static region table, not managed by SM.
    db_region: Dict[int, str] = {
        index: REGIONS[index % len(REGIONS)] for index in range(shard_count)}
    spec = AppSpec(
        name="fig20",
        shards=uniform_shards(
            shard_count, key_space=shard_count * 8,
            preferred_regions={i: db_region[i] for i in range(shard_count)}),
        replication=ReplicationStrategy.PRIMARY_ONLY,
    )
    orchestrator_config = OrchestratorConfig(
        rebalance_interval=30.0,
        failover_grace=60.0,
    )
    app = deploy_app(cluster, spec,
                     {region: servers_per_region for region in REGIONS},
                     orchestrator_config=orchestrator_config,
                     settle=90.0)
    orchestrator = app.orchestrator

    latency = TimeSeries(name="app_db_latency_ms")
    db_moves = TimeSeries(name="db_moves")

    def mean_pair_latency() -> float:
        total, count = 0.0, 0
        for index in range(shard_count):
            shard_id = f"shard{index}"
            replicas = orchestrator.table.replicas_of(shard_id)
            ready = [r for r in replicas if r.available
                     and r.address in orchestrator.servers]
            if not ready:
                continue
            app_region = orchestrator.servers[ready[0].address].machine.region
            total += cluster.network.latency.base_latency(
                app_region, db_region[index])
            count += 1
        return 1000.0 * total / max(1, count)

    start = cluster.engine.now
    every(cluster.engine, sample_interval,
          lambda: latency.record(cluster.engine.now - start,
                                 mean_pair_latency()))

    def admin_batch(batch_index: int) -> None:
        """Move ``batch_size`` DBShards to the next region over, then
        update the impacted AppShards' preferences (two separate admin
        actions, exactly as in the paper's incident)."""
        moved = []
        for offset in range(batch_size):
            index = (batch_index * batch_size + offset) % shard_count
            current = db_region[index]
            db_region[index] = REGIONS[
                (REGIONS.index(current) + 1) % len(REGIONS)]
            moved.append(index)
        db_moves.record(cluster.engine.now - start, len(moved))

        def update_preferences() -> None:
            for index in moved:
                shard = spec.shard(f"shard{index}")
                position = spec.shards.index(shard)
                spec.shards[position] = replace(
                    shard, preferred_region=db_region[index])

        # The admin notices the latency regression and updates preferences
        # shortly after the DB move.
        cluster.engine.call_after(30.0, update_preferences)

    for batch_index, batch_time in enumerate(batch_times):
        cluster.engine.call_at(start + batch_time,
                               lambda b=batch_index: admin_batch(b))

    cluster.run(until=start + horizon)
    moves = orchestrator.move_counter.windowed(60.0)
    return Fig20Result(
        latency=latency,
        app_shard_moves=moves,
        db_shard_moves=db_moves,
        batches=len(batch_times),
    )


def format_report(result: Fig20Result) -> str:
    lines = [
        "Figure 20 — AppShards migrate to follow DBShards",
        f"  admin batches              : {result.batches}",
        f"  total AppShard moves       : "
        f"{sum(int(v) for _t, v in result.app_shard_moves)}",
        "  paper shape: latency spikes at each DBShard batch, then falls"
        " back as SM co-locates AppShards",
        "",
        "mean AppShard<->DBShard latency (ms):",
        series_rows(result.latency, value_label="latency (ms)"),
    ]
    return "\n".join(lines)
