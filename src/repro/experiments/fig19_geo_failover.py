"""Figure 19: cross-region failover and fail-back of a geo-distributed app.

Paper setup: "we deploy a secondary-only application with 1,000 shards
and two replicas per shard across three regions located at FRC (east
coast ...), PRN (west coast ...) and ODN (Odense, Denmark), using 30
servers per region.  Out of the 1,000 shards, 400 so-called east-coast
(EC) shards are configured with a region preference for FRC".

Timeline (scaled 1:1 with the paper):

* t < 90 s   — steady state: an FRC client reads EC shards locally, low
  latency;
* t = 90 s   — FRC fails; requests fail over to PRN/ODN replicas (latency
  spike from retries, then a cross-region plateau); SM recreates the lost
  replicas in the surviving regions;
* t = 450 s  — FRC recovers; SM migrates one replica of each EC shard
  back (region preference), restoring local latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..app.client import WorkloadRecorder
from ..core.orchestrator import OrchestratorConfig
from ..core.spec import AppSpec, ReplicationStrategy, uniform_shards
from ..harness import SimCluster, deploy_app
from ..metrics.timeseries import TimeSeries
from .common import series_rows

REGIONS = ("FRC", "PRN", "ODN")


@dataclass
class Fig19Result:
    latency_by_bucket: TimeSeries     # mean EC-shard latency per bucket (ms)
    success_rate: float
    failure_time: float
    recovery_time: float
    ec_shards_with_frc_replica_before: int
    ec_shards_with_frc_replica_after: int
    cross_region_spread_before: int   # shards whose replicas span 2 regions

    def phase_latency(self, start: float, end: float) -> float:
        window = self.latency_by_bucket.between(start, end)
        return window.mean() if len(window) else float("nan")


def _ec_shards_in_frc(app, ec_shards: int) -> int:
    table = app.orchestrator.table
    servers = app.orchestrator.servers
    count = 0
    for index in range(ec_shards):
        for replica in table.replicas_of(f"shard{index}"):
            record = servers.get(replica.address)
            if (record is not None and record.alive
                    and record.machine.region == "FRC"):
                count += 1
                break
    return count


def _spread_count(app, shards: int) -> int:
    table = app.orchestrator.table
    servers = app.orchestrator.servers
    spread = 0
    for index in range(shards):
        regions = {servers[r.address].machine.region
                   for r in table.replicas_of(f"shard{index}")
                   if r.address in servers}
        if len(regions) >= 2:
            spread += 1
    return spread


def run(shards: int = 1_000, ec_shards: int = 400,
        servers_per_region: int = 30, replica_count: int = 2,
        request_rate: float = 20.0,
        failure_time: float = 90.0, recovery_time: float = 450.0,
        horizon: float = 560.0, bucket: float = 10.0,
        seed: int = 0, parallel_regions: int = 0) -> Fig19Result:
    cluster = SimCluster.build(
        regions=REGIONS,
        machines_per_region=servers_per_region + 2,
        seed=seed,
        parallel_regions=parallel_regions,
    )
    key_space = shards * 16
    preferences = {index: "FRC" for index in range(ec_shards)}
    spec = AppSpec(
        name="fig19",
        shards=uniform_shards(shards, key_space=key_space,
                              replica_count=replica_count,
                              preferred_regions=preferences),
        replication=ReplicationStrategy.SECONDARY_ONLY,
    )
    orchestrator_config = OrchestratorConfig(
        failover_grace=20.0,
        rebalance_interval=20.0,
        max_moves_per_round=200,  # fail-back of 400 EC shards is urgent
        search_config=OrchestratorConfig().search_config,
    )
    app = deploy_app(
        cluster, spec,
        {region: servers_per_region for region in REGIONS},
        orchestrator_config=orchestrator_config,
        settle=90.0,
    )
    before_frc = _ec_shards_in_frc(app, ec_shards)
    before_spread = _spread_count(app, shards)

    client = app.client(cluster, "FRC")
    recorder = WorkloadRecorder.with_bucket(bucket)
    ec_key_limit = (key_space // shards) * ec_shards
    start = cluster.engine.now
    client.run_workload(
        duration=horizon,
        rate=lambda t: request_rate,
        key_fn=lambda rng: rng.randrange(ec_key_limit),  # EC shards only
        recorder=recorder,
        prefer_primary=False,
    )
    cluster.engine.call_at(start + failure_time,
                           lambda: cluster.twines["FRC"].fail_region())
    cluster.engine.call_at(start + recovery_time,
                           lambda: cluster.twines["FRC"].repair_region())
    cluster.run(until=start + horizon)

    # Bucketed mean latency relative to the experiment start, in ms.
    sums: Dict[int, Tuple[float, int]] = {}
    for time, latency in recorder.latency:
        index = int((time - start) // bucket)
        total, count = sums.get(index, (0.0, 0))
        sums[index] = (total + latency, count + 1)
    latency_series = TimeSeries(name="ec_latency_ms")
    for index in sorted(sums):
        total, count = sums[index]
        latency_series.record((index + 0.5) * bucket,
                              1000.0 * total / count)

    total = recorder.succeeded + recorder.failed
    return Fig19Result(
        latency_by_bucket=latency_series,
        success_rate=recorder.succeeded / max(1, total),
        failure_time=failure_time,
        recovery_time=recovery_time,
        ec_shards_with_frc_replica_before=before_frc,
        ec_shards_with_frc_replica_after=_ec_shards_in_frc(app, ec_shards),
        cross_region_spread_before=before_spread,
    )


def format_report(result: Fig19Result) -> str:
    steady = result.phase_latency(0.0, result.failure_time)
    outage = result.phase_latency(result.failure_time + 30.0,
                                  result.recovery_time)
    recovered = result.phase_latency(result.recovery_time + 60.0, 1e12)
    lines = [
        "Figure 19 — geo-distributed failover (client at FRC, EC shards)",
        f"  success rate                : {result.success_rate:.4f}",
        f"  EC shards w/ FRC replica    : "
        f"{result.ec_shards_with_frc_replica_before} before, "
        f"{result.ec_shards_with_frc_replica_after} after recovery",
        f"  shards spread >= 2 regions  : {result.cross_region_spread_before}",
        f"  steady-state latency        : {steady:7.1f} ms",
        f"  during-outage latency       : {outage:7.1f} ms",
        f"  post-recovery latency       : {recovered:7.1f} ms",
        "  paper shape: low -> spike at failure -> cross-region plateau ->"
        " back to low after shards move back",
        "",
        series_rows(result.latency_by_bucket, value_label="latency (ms)"),
    ]
    return "\n".join(lines)
