"""Service router: the client-side library that routes requests by key.

"The service router library is linked into application clients.  It
learns from the service discovery system about which application server
is responsible for which shards and routes requests accordingly" (§3.2).

The router keeps a sorted-interval index over the latest delivered shard
map (app-key approach — ranges, not hashes, so prefix scans stay
possible), picks the primary for primary-routed requests or the
nearest replica by region for secondary-reads, and retries on
failure/misroute with the freshest map available.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional, Tuple

from ..core.shard_map import ShardMap, ShardMapEntry
from ..sim.engine import Delay, Engine, Wait
from ..sim.network import Network, RpcResult


class RoutingError(RuntimeError):
    """No routable replica for a key (empty map or unassigned shard)."""


@dataclass
class RequestOutcome:
    """Bookkeeping for one logical client request (across retries)."""

    ok: bool
    value: Any = None
    error: str = ""
    latency: float = 0.0
    attempts: int = 1
    shard_id: str = ""


class ServiceRouter:
    """Routes by application key using the latest shard map delivered.

    One router per client endpoint.  The owning client wires
    :meth:`on_map_update` to a :class:`ServiceDiscovery` subscription.
    """

    def __init__(self, engine: Engine, network: Network, client_address: str,
                 attempts: int = 3, rpc_timeout: float = 1.0,
                 retry_backoff: float = 0.5) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.engine = engine
        self.network = network
        self.client_address = client_address
        self.attempts = attempts
        self.rpc_timeout = rpc_timeout
        self.retry_backoff = retry_backoff
        self._map: Optional[ShardMap] = None
        self._lows: List[int] = []
        self._entries: List[ShardMapEntry] = []
        self.map_updates = 0
        # address -> region (or None), valid for one registration epoch of
        # the network; endpoint regions are immutable while registered.
        self._region_cache: dict = {}
        self._region_epoch = -1

    # -- map handling -----------------------------------------------------------

    def on_map_update(self, shard_map: ShardMap) -> None:
        if self._map is not None and shard_map.version <= self._map.version:
            return  # tree fan-out can reorder deliveries; ignore stale ones
        self._map = shard_map
        # The sorted interval index is cached on the map itself and shared
        # by every router that receives this publish.
        self._lows, self._entries = shard_map.routing_index()
        self.map_updates += 1

    @property
    def map_version(self) -> int:
        return self._map.version if self._map is not None else 0

    def entry_for_key(self, key: int) -> ShardMapEntry:
        if not self._entries:
            raise RoutingError("no shard map received yet")
        index = bisect.bisect_right(self._lows, key) - 1
        if index < 0:
            raise RoutingError(f"key {key} below the key space")
        entry = self._entries[index]
        if not (entry.key_low <= key < entry.key_high):
            raise RoutingError(f"key {key} not covered by any shard")
        return entry

    # -- replica selection ----------------------------------------------------------

    def _region_of(self, address: str) -> Optional[str]:
        network = self.network
        if network.registration_epoch != self._region_epoch:
            self._region_cache = {}
            self._region_epoch = network.registration_epoch
        cache = self._region_cache
        try:
            return cache[address]
        except KeyError:
            pass
        region = (network.endpoint(address).region
                  if network.has_endpoint(address) else None)
        cache[address] = region
        return region

    def pick_address(self, key: int, prefer_primary: bool = True,
                     exclude: Tuple[str, ...] = ()) -> Tuple[str, str]:
        """(address, shard_id) for a key; nearest replica for reads.

        ``exclude`` lists addresses already tried this request.
        """
        entry = self.entry_for_key(key)
        if prefer_primary:
            if entry.primary is not None and entry.primary not in exclude:
                return entry.primary, entry.shard_id
            candidates = [a for a in entry.all_addresses() if a not in exclude]
        else:
            candidates = [a for a in entry.all_addresses() if a not in exclude]
        if not candidates:
            raise RoutingError(f"shard {entry.shard_id}: no routable replica")
        client_region = self._region_of(self.client_address)
        if client_region is None:
            return candidates[0], entry.shard_id

        def distance(address: str) -> float:
            region = self._region_of(address)
            if region is None:
                return float("inf")
            return self.network.latency.base_latency(client_region, region)

        best = min(candidates, key=distance)
        return best, entry.shard_id

    # -- the request process -------------------------------------------------------

    def request(self, key: int, payload: Any, method: str = "app.request",
                prefer_primary: bool = True) -> Generator[Any, Any, RequestOutcome]:
        """Generator process: send a request, retrying across replicas.

        Run it with ``engine.process(router.request(...))`` or yield it
        from another process.  A request fails only after ``attempts``
        tries have all failed — matching how production clients hide
        transient misroutes behind retries.
        """
        start = self.engine.now
        tried: Tuple[str, ...] = ()
        last_error = ""
        shard_id = ""
        # One message dict per logical request, updated across retries.
        # Safe to reuse: a retry only starts after the previous attempt
        # settled, and servers copy the dict before async forwarding.
        message = {"key": key, "shard_id": "", "payload": payload,
                   "forwarded": False}
        for attempt in range(1, self.attempts + 1):
            try:
                address, shard_id = self.pick_address(
                    key, prefer_primary=prefer_primary, exclude=tried)
            except RoutingError as exc:
                last_error = str(exc)
                yield Delay(self.retry_backoff)
                continue
            message["shard_id"] = shard_id
            call = self.network.rpc(
                self.client_address, address, method, message,
                timeout=self.rpc_timeout)
            result: RpcResult = yield Wait(call.done)
            if result.ok:
                return RequestOutcome(ok=True, value=result.value,
                                      latency=self.engine.now - start,
                                      attempts=attempt, shard_id=shard_id)
            last_error = result.error
            tried = tried + (address,)
            if attempt < self.attempts:
                yield Delay(self.retry_backoff)
        return RequestOutcome(ok=False, error=last_error,
                              latency=self.engine.now - start,
                              attempts=self.attempts, shard_id=shard_id)
