"""Service router: the client-side library that routes requests by key.

"The service router library is linked into application clients.  It
learns from the service discovery system about which application server
is responsible for which shards and routes requests accordingly" (§3.2).

The router keeps a sorted-interval index over the latest delivered shard
map (app-key approach — ranges, not hashes, so prefix scans stay
possible), picks the primary for primary-routed requests or the
nearest replica by region for secondary-reads, and retries on
failure/misroute with the freshest map available.

Requests run through a slotted :class:`_RequestOp` state machine
(mirroring the network's ``_RpcOp``): retries, backoff, misroute
exclusion and outcome recording are precomputed bound-method callbacks,
so the steady-state request path allocates no closures, generator frames
or per-request processes.  The generator :meth:`ServiceRouter.request`
remains as a thin shim over the state machine for callers that join
requests from simulation processes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional, Tuple

from ..core.shard_map import AppKeyIndex, ShardMap, ShardMapDelta, ShardMapEntry
from ..sim.engine import Engine, Signal, Wait
from ..sim.network import Network, RpcResult


class RoutingError(RuntimeError):
    """No routable replica for a key (empty map or unassigned shard)."""


@dataclass
class RequestOutcome:
    """Bookkeeping for one logical client request (across retries)."""

    ok: bool
    value: Any = None
    error: str = ""
    latency: float = 0.0
    attempts: int = 1
    shard_id: str = ""


class ServiceRouter:
    """Routes by application key using the latest shard map delivered.

    One router per client endpoint.  The owning client wires
    :meth:`on_map_update` to a :class:`ServiceDiscovery` subscription.
    """

    def __init__(self, engine: Engine, network: Network, client_address: str,
                 attempts: int = 3, rpc_timeout: float = 1.0,
                 retry_backoff: float = 0.5) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        self.engine = engine
        self.network = network
        self.client_address = client_address
        self.attempts = attempts
        self.rpc_timeout = rpc_timeout
        self.retry_backoff = retry_backoff
        self._map: Optional[ShardMap] = None
        self._index: Optional[AppKeyIndex] = None
        self.map_updates = 0
        # address -> region (or None), valid for one registration epoch of
        # the network; endpoint regions are immutable while registered.
        self._region_cache: dict = {}
        self._region_epoch = -1
        # key -> (address, shard_id) for exclude-free routing, one dict per
        # prefer_primary flag.  A cached route depends only on the entry
        # content for that key and on which endpoints are registered, so
        # invalidation is two-pronged: a delta-carrying map delivery
        # evicts only the keys of changed shards (via the per-shard key
        # buckets below), while a delta-less delivery or an endpoint
        # change clears wholesale.  All clearing funnels through
        # _clear_route_caches — no double clears.
        self._route_caches: Tuple[dict, dict] = ({}, {})
        # shard_id -> [cached keys], parallel to _route_caches: the
        # reverse index that makes per-shard eviction O(cached keys of
        # that shard) instead of O(cache).
        self._route_keys_by_shard: Tuple[dict, dict] = ({}, {})
        self._route_epoch = -1
        # Routing counters: plain unconditional int bumps on the hot path
        # (cheaper than any guard); surfaced as registry gauges below.
        self.requests_started = 0
        self.requests_failed = 0
        self.retries = 0
        self.misroutes = 0
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.route_evictions = 0
        self.map_resyncs = 0
        self._tracer = network.tracer
        if self._tracer.enabled and self._tracer.registry is not None:
            registry = self._tracer.registry
            base = f"router.{client_address}"
            registry.gauge(f"{base}.requests_started",
                           lambda: self.requests_started)
            registry.gauge(f"{base}.requests_failed",
                           lambda: self.requests_failed)
            registry.gauge(f"{base}.retries", lambda: self.retries)
            registry.gauge(f"{base}.misroutes", lambda: self.misroutes)
            registry.gauge(f"{base}.route_cache_hits",
                           lambda: self.route_cache_hits)
            registry.gauge(f"{base}.route_cache_misses",
                           lambda: self.route_cache_misses)
            registry.gauge(f"{base}.route_evictions",
                           lambda: self.route_evictions)
            registry.gauge(f"{base}.map_resyncs",
                           lambda: self.map_resyncs)

    # -- map handling -----------------------------------------------------------

    def on_map_update(self, shard_map: ShardMap,
                      delta: Optional[ShardMapDelta] = None) -> None:
        """Adopt a newly delivered map.

        With a ``delta`` chaining onto the map we currently route with,
        only the cached routes of changed shards are evicted — the warm
        cache survives the frequent small publishes that dominate steady
        state.  Any break in the chain (first delivery, delta-less
        publish, reordered versions, layout change) falls back to a
        wholesale resync.
        """
        previous = self._map
        if previous is not None and shard_map.version <= previous.version:
            return  # tree fan-out can reorder deliveries; ignore stale ones
        self._map = shard_map
        # The sorted interval index lives on the app's shared AppKeyIndex:
        # one bisect structure per app, reused across every version and
        # every router, never rebuilt on delivery.
        self._index = shard_map.key_index
        self.map_updates += 1
        if (delta is not None and previous is not None
                and delta.base_version == previous.version
                and shard_map.key_index is previous.key_index
                and not delta.removed):
            self._evict_changed(delta)
        else:
            self.map_resyncs += 1
            self._clear_route_caches()

    def _evict_changed(self, delta: ShardMapDelta) -> None:
        """O(changed) eviction: drop cached routes only for shards whose
        entry changed in this delta."""
        caches = self._route_caches
        buckets = self._route_keys_by_shard
        for entry in delta.changed:
            shard_id = entry.shard_id
            for cache, bucket in zip(caches, buckets):
                keys = bucket.pop(shard_id, None)
                if keys:
                    self.route_evictions += len(keys)
                    for key in keys:
                        cache.pop(key, None)

    def _clear_route_caches(self) -> None:
        """The single wholesale-invalidation site for the route caches."""
        self._route_caches[0].clear()
        self._route_caches[1].clear()
        self._route_keys_by_shard[0].clear()
        self._route_keys_by_shard[1].clear()

    @property
    def map_version(self) -> int:
        return self._map.version if self._map is not None else 0

    def entry_for_key(self, key: int) -> ShardMapEntry:
        index = self._index
        if index is None or not len(index):
            raise RoutingError("no shard map received yet")
        position = bisect.bisect_right(index.sorted_lows, key) - 1
        if position < 0:
            raise RoutingError(f"key {key} below the key space")
        entry_index = index.sorted_order[position]
        if key >= index.key_highs[entry_index]:
            raise RoutingError(f"key {key} not covered by any shard")
        return self._map.entry_at(entry_index)

    # -- replica selection ----------------------------------------------------------

    def _region_of(self, address: str) -> Optional[str]:
        network = self.network
        if network.registration_epoch != self._region_epoch:
            self._region_cache = {}
            self._region_epoch = network.registration_epoch
        cache = self._region_cache
        try:
            return cache[address]
        except KeyError:
            pass
        region = (network.endpoint(address).region
                  if network.has_endpoint(address) else None)
        cache[address] = region
        return region

    def pick_address(self, key: int, prefer_primary: bool = True,
                     exclude: Tuple[str, ...] = ()) -> Tuple[str, str]:
        """(address, shard_id) for a key; nearest replica for reads.

        ``exclude`` lists addresses already tried this request.
        """
        entry = self.entry_for_key(key)
        if prefer_primary:
            if entry.primary is not None and entry.primary not in exclude:
                return entry.primary, entry.shard_id
            candidates = [a for a in entry.all_addresses() if a not in exclude]
        else:
            candidates = [a for a in entry.all_addresses() if a not in exclude]
        if not candidates:
            raise RoutingError(f"shard {entry.shard_id}: no routable replica")
        client_region = self._region_of(self.client_address)
        if client_region is None:
            return candidates[0], entry.shard_id

        def distance(address: str) -> float:
            region = self._region_of(address)
            if region is None:
                return float("inf")
            return self.network.latency.base_latency(client_region, region)

        best = min(candidates, key=distance)
        return best, entry.shard_id

    def route_for(self, key: int,
                  prefer_primary: bool = True) -> Tuple[str, str]:
        """Cached exclude-free :meth:`pick_address`.

        Steady-state requests (no replica excluded yet) resolve through
        one dict lookup instead of the bisect plus replica-selection walk;
        the cache is scoped to the current (map version, registration
        epoch) pair, which is exactly the state ``pick_address`` reads.
        Routing failures are never cached.
        """
        # Inline _sync_route_epoch: this runs once per request, and the
        # extra call costs ~25% of the whole cache-hit path.
        if self.network.registration_epoch != self._route_epoch:
            self._route_epoch = self.network.registration_epoch
            self._clear_route_caches()
        which = 1 if prefer_primary else 0
        cache = self._route_caches[which]
        route = cache.get(key)
        if route is None:
            self.route_cache_misses += 1
            route = self.pick_address(key, prefer_primary=prefer_primary)
            cache[key] = route
            bucket = self._route_keys_by_shard[which]
            shard_keys = bucket.get(route[1])
            if shard_keys is None:
                bucket[route[1]] = [key]
            else:
                shard_keys.append(key)
        else:
            self.route_cache_hits += 1
        return route

    # -- the request state machine -------------------------------------------------

    def start_request(self, key: int, payload: Any,
                      method: str = "app.request",
                      prefer_primary: bool = True,
                      on_done: Optional[Callable[[RequestOutcome], None]] = None,
                      ) -> "_RequestOp":
        """Fire one logical request through the retry state machine.

        ``on_done(outcome)`` runs at completion (success, or after
        ``attempts`` tries all failed).  This is the allocation-lean entry
        point used by workload drivers; :meth:`request` is the generator
        shim over the same machinery.
        """
        return _RequestOp(self, key, payload, method, prefer_primary,
                          on_done)

    def request(self, key: int, payload: Any, method: str = "app.request",
                prefer_primary: bool = True) -> Generator[Any, Any, RequestOutcome]:
        """Generator process: send a request, retrying across replicas.

        Run it with ``engine.process(router.request(...))`` or yield it
        from another process.  A request fails only after ``attempts``
        tries have all failed — matching how production clients hide
        transient misroutes behind retries.  (Thin shim over
        :meth:`start_request`; the retry semantics live in
        :class:`_RequestOp`.)
        """
        op = _RequestOp(self, key, payload, method, prefer_primary, None)
        if op.outcome is None:
            op.done = Signal(self.engine)
            yield Wait(op.done)
        return op.outcome


class _RequestOp:
    """Retry state machine for one logical client request.

    Bound methods of this object are the scheduled callbacks (backoff
    wakeups, RPC completions), so a request costs one slotted object and
    one message dict — no generator frames, closures, processes or
    per-request signals on the happy path.  The retry semantics are
    exactly those of the old generator loop: pick a replica (excluding
    ones already tried), RPC it, back off ``retry_backoff`` between
    attempts, and fail only after ``attempts`` tries — with a routing
    error on the final attempt still paying the backoff before the
    failure surfaces, as the generator did.
    """

    __slots__ = ("router", "engine", "message", "method", "prefer_primary",
                 "on_done", "start", "attempt", "tried", "last_error",
                 "address", "shard_id", "outcome", "done")

    def __init__(self, router: ServiceRouter, key: int, payload: Any,
                 method: str, prefer_primary: bool,
                 on_done: Optional[Callable[[RequestOutcome], None]]) -> None:
        self.router = router
        self.engine = router.engine
        self.method = method
        self.prefer_primary = prefer_primary
        self.on_done = on_done
        self.start = router.engine.now
        self.attempt = 1
        self.tried: Tuple[str, ...] = ()
        self.last_error = ""
        self.address = ""
        self.shard_id = ""
        self.outcome: Optional[RequestOutcome] = None
        self.done: Optional[Signal] = None  # lazily set by the shim
        # One message dict per logical request, updated across retries.
        # Safe to reuse: a retry only starts after the previous attempt
        # settled, and servers copy the dict before async forwarding.
        self.message = {"key": key, "shard_id": "", "payload": payload,
                        "forwarded": False}
        router.requests_started += 1
        self._attempt_once()

    def _attempt_once(self) -> None:
        router = self.router
        try:
            if self.tried:
                address, shard_id = router.pick_address(
                    self.message["key"], prefer_primary=self.prefer_primary,
                    exclude=self.tried)
            else:
                address, shard_id = router.route_for(
                    self.message["key"], self.prefer_primary)
        except RoutingError as exc:
            self.last_error = str(exc)
            self.engine.call_after(router.retry_backoff, self._backoff_done)
            return
        self.address = address
        self.shard_id = shard_id
        message = self.message
        message["shard_id"] = shard_id
        call = router.network.rpc(router.client_address, address,
                                  self.method, message,
                                  timeout=router.rpc_timeout)
        call.done._add_waiter(self._rpc_done)

    def _rpc_done(self, result: RpcResult) -> None:
        if result.ok:
            self._finish(RequestOutcome(
                ok=True, value=result.value,
                latency=self.engine.now - self.start,
                attempts=self.attempt, shard_id=self.shard_id))
            return
        router = self.router
        self.last_error = result.error
        self.tried = self.tried + (self.address,)
        if "NotOwner" in result.error:
            # The map we routed with was stale: the server disowned the
            # shard (§3.2 — clients hide misroutes behind retries).
            router.misroutes += 1
            tracer = router._tracer
            if tracer.enabled:
                tracer.instant("router", "misroute", self.engine.now,
                               {"client": router.client_address,
                                "address": self.address,
                                "shard": self.shard_id,
                                "attempt": self.attempt})
        if self.attempt < router.attempts:
            router.retries += 1
            self.engine.call_after(router.retry_backoff,
                                   self._backoff_done)
        else:
            self._fail()

    def _backoff_done(self) -> None:
        if self.attempt >= self.router.attempts:
            self._fail()  # routing error on the final attempt
            return
        self.attempt += 1
        self._attempt_once()

    def _fail(self) -> None:
        router = self.router
        router.requests_failed += 1
        tracer = router._tracer
        if tracer.enabled:
            tracer.instant("router", "request_failed", self.engine.now,
                           {"client": router.client_address,
                            "shard": self.shard_id,
                            "error": self.last_error})
        self._finish(RequestOutcome(
            ok=False, error=self.last_error,
            latency=self.engine.now - self.start,
            attempts=router.attempts, shard_id=self.shard_id))

    def _finish(self, outcome: RequestOutcome) -> None:
        self.outcome = outcome
        if self.on_done is not None:
            self.on_done(outcome)
        if self.done is not None:
            self.done.fire(outcome)
