"""Service discovery: disseminates shard maps to application clients.

"[The orchestrator] distributes the new shard map to application clients
via the service discovery system, which internally uses a multi-level
data-distribution tree to fan out" (§3.2).  We model the tree as a
per-subscriber propagation delay: every published map version reaches
each subscriber after ``base_delay`` plus jitter (deeper tree levels =
longer tails).  Clients therefore route with *slightly stale* maps, which
is exactly what makes non-graceful migration drop requests (Fig 17).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.shard_map import ShardMap
from ..sim.engine import Engine

MapCallback = Callable[[ShardMap], None]


@dataclass
class Subscription:
    """Handle returned by ``subscribe``; call ``cancel`` to stop updates."""

    app: str
    callback: MapCallback
    delay: float
    active: bool = True

    def cancel(self) -> None:
        self.active = False

    def deliver(self, shard_map: ShardMap) -> None:
        """Scheduled delivery callback (bound method — no closure per
        publish x subscriber)."""
        if self.active:
            self.callback(shard_map)


class ServiceDiscovery:
    """Versioned map store with delayed fan-out to subscribers."""

    def __init__(self, engine: Engine, base_delay: float = 1.0,
                 jitter: float = 1.0, rng: Optional[random.Random] = None) -> None:
        if base_delay < 0 or jitter < 0:
            raise ValueError("delays must be non-negative")
        self.engine = engine
        self.base_delay = base_delay
        self.jitter = jitter
        self.rng = rng or random.Random(0)
        self._maps: Dict[str, ShardMap] = {}
        self._subscribers: Dict[str, List[Subscription]] = {}
        self.publishes = 0

    def publish(self, shard_map: ShardMap) -> None:
        """Store the new version and fan it out."""
        current = self._maps.get(shard_map.app)
        if current is not None and shard_map.version <= current.version:
            raise ValueError(
                f"{shard_map.app}: version {shard_map.version} not newer "
                f"than published {current.version}")
        self._maps[shard_map.app] = shard_map
        self.publishes += 1
        for subscription in self._subscribers.get(shard_map.app, []):
            if not subscription.active:
                continue
            delay = subscription.delay + self.rng.uniform(0.0, self.jitter)
            self.engine.call_after(delay, subscription.deliver, shard_map)

    def subscribe(self, app: str, callback: MapCallback,
                  delay: Optional[float] = None) -> Subscription:
        """Register for updates; the current map (if any) arrives immediately."""
        subscription = Subscription(
            app=app,
            callback=callback,
            delay=self.base_delay if delay is None else delay,
        )
        self._subscribers.setdefault(app, []).append(subscription)
        current = self._maps.get(app)
        if current is not None:
            self.engine.call_after(0.0, subscription.deliver, current)
        return subscription

    def latest(self, app: str) -> Optional[ShardMap]:
        """The authoritative newest map (what a fresh subscriber will get)."""
        return self._maps.get(app)
