"""Service discovery: disseminates shard maps to application clients.

"[The orchestrator] distributes the new shard map to application clients
via the service discovery system, which internally uses a multi-level
data-distribution tree to fan out" (§3.2).  We model the tree as a
per-subscriber propagation delay: every published map version reaches
each subscriber after ``base_delay`` plus jitter (deeper tree levels =
longer tails).  Clients therefore route with *slightly stale* maps, which
is exactly what makes non-graceful migration drop requests (Fig 17).

Dissemination is delta-encoded (§6 scale): a publish carries the full
snapshot by reference (the authoritative store, and what ``latest()`` /
fresh subscribers see) plus an optional :class:`ShardMapDelta` describing
what changed since the previous version.  A delta-aware subscription
tracks the last version it delivered and forwards the delta only when it
chains onto that version; otherwise — first delivery, reordered fan-out,
reconnect, or an orchestrator failover that resumed version numbering —
it falls back to a full-snapshot *resync* (delta ``None``), so consumers
can always rebuild from scratch.  The wire cost modeled by the scale
benchmark is ``delta_wire_bytes`` per steady-state delivery instead of
``map_wire_bytes``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.shard_map import ShardMap, ShardMapDelta
from ..sim.engine import Engine

MapCallback = Callable[[ShardMap], None]


@dataclass
class Subscription:
    """Handle returned by ``subscribe``; call ``cancel`` to stop updates.

    Plain subscriptions (``delta_aware=False``) receive every delivered
    map, in fan-out order, exactly as before deltas existed — version
    filtering is the consumer's business (the router ignores stale
    versions itself, and Fig 17 depends on observing late deliveries).
    Delta-aware subscriptions own the version bookkeeping: stale
    deliveries are dropped here, and the callback receives
    ``(shard_map, delta)`` where ``delta`` is only non-None when it
    chains exactly onto the last delivered version.
    """

    app: str
    callback: Callable
    delay: float
    active: bool = True
    delta_aware: bool = False
    last_version: int = field(default=0, repr=False)
    deliveries: int = field(default=0, repr=False)
    resyncs: int = field(default=0, repr=False)
    stale_drops: int = field(default=0, repr=False)

    def cancel(self) -> None:
        self.active = False

    def deliver(self, shard_map: ShardMap,
                delta: Optional[ShardMapDelta] = None) -> None:
        """Scheduled delivery callback (bound method — no closure per
        publish x subscriber)."""
        if not self.active:
            return
        if not self.delta_aware:
            self.callback(shard_map)
            return
        if shard_map.version <= self.last_version:
            self.stale_drops += 1
            return
        if delta is not None and delta.base_version != self.last_version:
            # Reconnect, reordered delivery, or a publisher failover whose
            # first delta chains onto a version we never saw: fall back to
            # the full snapshot riding alongside the delta.
            self.resyncs += 1
            delta = None
        self.last_version = shard_map.version
        self.deliveries += 1
        self.callback(shard_map, delta)

    def deliver_pair(self, pair: tuple) -> None:
        """Scheduled delivery of a ``(shard_map, delta)`` publish — the
        engine's ``call_after`` carries a single argument, so delta
        publishes share one packed tuple across all subscribers."""
        self.deliver(pair[0], pair[1])


class ServiceDiscovery:
    """Versioned map store with delayed fan-out to subscribers."""

    def __init__(self, engine: Engine, base_delay: float = 1.0,
                 jitter: float = 1.0, rng: Optional[random.Random] = None) -> None:
        if base_delay < 0 or jitter < 0:
            raise ValueError("delays must be non-negative")
        self.engine = engine
        self.base_delay = base_delay
        self.jitter = jitter
        self.rng = rng or random.Random(0)
        self._maps: Dict[str, ShardMap] = {}
        self._subscribers: Dict[str, List[Subscription]] = {}
        self.publishes = 0
        self.delta_publishes = 0
        self.full_publishes = 0

    def publish(self, shard_map: ShardMap,
                delta: Optional[ShardMapDelta] = None) -> None:
        """Store the new version and fan it out.

        ``delta``, when given, must describe this exact version; it is
        forwarded to delta-aware subscribers so they can patch their last
        map instead of reindexing the full snapshot.  A delta whose base
        is not the currently published version (e.g. the first publish of
        a failed-over orchestrator against a fresh discovery) is dropped
        and the publish degrades to full-snapshot dissemination rather
        than failing.
        """
        current = self._maps.get(shard_map.app)
        if current is not None and shard_map.version <= current.version:
            raise ValueError(
                f"{shard_map.app}: version {shard_map.version} not newer "
                f"than published {current.version}")
        if delta is not None:
            if delta.app != shard_map.app or delta.version != shard_map.version:
                raise ValueError(
                    f"{shard_map.app}: delta v{delta.version} does not "
                    f"describe published map v{shard_map.version}")
            if current is not None and delta.base_version != current.version:
                delta = None  # broken chain: degrade to full dissemination
        self._maps[shard_map.app] = shard_map
        self.publishes += 1
        if delta is not None:
            self.delta_publishes += 1
        else:
            self.full_publishes += 1
        pair = None if delta is None else (shard_map, delta)
        for subscription in self._subscribers.get(shard_map.app, []):
            if not subscription.active:
                continue
            delay = subscription.delay + self.rng.uniform(0.0, self.jitter)
            if pair is None:
                self.engine.call_after(delay, subscription.deliver, shard_map)
            else:
                self.engine.call_after(delay, subscription.deliver_pair, pair)

    def subscribe(self, app: str, callback: Callable,
                  delay: Optional[float] = None,
                  deltas: bool = False) -> Subscription:
        """Register for updates; the current map (if any) arrives immediately.

        With ``deltas=True`` the callback signature is
        ``callback(shard_map, delta)`` — ``delta`` is ``None`` whenever
        the subscriber must resync from the full snapshot (including the
        initial delivery), and otherwise chains exactly onto the previous
        map this subscription delivered.
        """
        subscription = Subscription(
            app=app,
            callback=callback,
            delay=self.base_delay if delay is None else delay,
            delta_aware=deltas,
        )
        self._subscribers.setdefault(app, []).append(subscription)
        current = self._maps.get(app)
        if current is not None:
            self.engine.call_after(0.0, subscription.deliver, current)
        return subscription

    def latest(self, app: str) -> Optional[ShardMap]:
        """The authoritative newest map (what a fresh subscriber will get)."""
        return self._maps.get(app)
