"""Service discovery and client-side request routing."""

from .router import RequestOutcome, RoutingError, ServiceRouter
from .service_discovery import ServiceDiscovery, Subscription

__all__ = [
    "RequestOutcome",
    "RoutingError",
    "ServiceRouter",
    "ServiceDiscovery",
    "Subscription",
]
