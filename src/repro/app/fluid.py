"""Fluid traffic: analytic per-(app, shard, region) flows.

The per-request path (:class:`~repro.app.client.ApplicationClient` +
``_WorkloadOp``) spends one engine event per arrival; at paper scale
(billions of requests/s) that is hopeless.  The fluid path represents
the same workload as *flows*: one flow per (app, shard, client-region),
carrying an arrival-rate share, a routed address, and a health state
derived from exactly the state the event path would probe per request —
the client's subscribed shard map on the routing side and the real
:class:`~repro.app.server.ApplicationServer` hosting tables (including
§4.3 forwarding chains) on the serving side.

Flows are advanced in coarse epochs by the
:class:`~repro.sim.fluid.EpochDriver`; an epoch integrates arrivals
analytically (shared rate curves from :mod:`repro.workloads.load`) and
costs O(serving addresses), not O(requests).  Discrete events are spent
only on transitions:

* **map-version changes** — the client subscribes delta-aware, so a
  :class:`~repro.core.shard_map.ShardMapDelta` reprices exactly the
  changed flows (the PR 6 dissemination hook);
* **migrations / failures / restarts** — detected per epoch through
  per-address fingerprints (the server's hosting-mutation counter plus
  endpoint liveness), repricing only flows of addresses that changed;
* **overload onset/recovery** — per-address M/G/k utilization crossing
  the threshold flips the address's overload state and sheds the excess.

Latency comes from the analytic mirror of the event path: two one-way
legs of the region latency matrix with the jitter factors from
:mod:`repro.sim.fluid`, plus the M/G/k queueing delay (zero at the event
path's default of synchronous zero-service-time handlers, so the two
modes agree).

Event-mode semantics NOT mirrored (the event/fluid boundary, see
DESIGN.md "Hybrid traffic model"): per-request retry timing (failures
count once, at epoch granularity), secondary reads (flows follow the
primary), message loss and NETWORK_LOSS reachability, and application
handler side effects (a fluid epoch never invokes handlers).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..discovery.service_discovery import ServiceDiscovery
from ..metrics.timeseries import TimeSeries
from ..obs.tracer import NO_TRACER, Tracer
from ..sim.engine import Engine
from ..sim.fluid import (EpochDriver, jitter_mean_factor, jitter_p99_factor,
                         mgk_utilization, mgk_wait)
from ..sim.network import Network
from .client import WorkloadRecorder, clamped_rate
from .runtime import AppRuntime
from .server import HostedState

__all__ = ["FluidClient", "FluidServer"]

#: p99/mean multiplier for the conditional M/G/k wait (exponential tail).
_WAIT_TAIL_P99 = 4.605170185988091  # ln(100)

#: Forwarding chains longer than this count as broken (mirrors the event
#: path, where each hop is a real RPC and cycles would time out).
_MAX_FORWARD_DEPTH = 3


class FluidServer:
    """Analytic counterpart of one serving address.

    Aggregates the arrival rate of every healthy flow resolved to this
    address and derives utilization and expected queueing delay from the
    M/G/k approximation.  ``capacity`` is the number of parallel service
    slots, ``service_time`` the mean per-request service time; the
    defaults (``service_time=0``) match the event path's synchronous
    handlers, where a request costs only network time.
    """

    __slots__ = ("address", "region", "capacity", "service_time",
                 "cv_service2", "arrival_rate", "utilization", "wait",
                 "overloaded")

    def __init__(self, address: str, region: str, capacity: int,
                 service_time: float, cv_service2: float) -> None:
        self.address = address
        self.region = region
        self.capacity = capacity
        self.service_time = service_time
        self.cv_service2 = cv_service2
        self.arrival_rate = 0.0
        self.utilization = 0.0
        self.wait = 0.0
        self.overloaded = False

    def offer(self, arrival_rate: float) -> None:
        """Update utilization/wait for this epoch's offered load."""
        self.arrival_rate = arrival_rate
        self.utilization = mgk_utilization(arrival_rate, self.service_time,
                                           self.capacity)
        self.wait = mgk_wait(arrival_rate, self.service_time, self.capacity,
                             cv_service2=self.cv_service2)

    def served_fraction(self) -> float:
        """Fraction of offered arrivals actually served (rho > 1 sheds)."""
        if self.utilization <= 1.0:
            return 1.0
        return 1.0 / self.utilization


class _Flow:
    """One (shard, client-region) flow."""

    __slots__ = ("shard_id", "share", "routed", "serving", "server_region",
                 "healthy")

    def __init__(self, shard_id: str, share: float) -> None:
        self.shard_id = shard_id
        self.share = share
        self.routed: Optional[str] = None   # address the client's map picks
        self.serving: Optional[str] = None  # address actually serving (§4.3)
        self.server_region: Optional[str] = None
        self.healthy = False


class FluidClient:
    """Fluid mirror of :class:`~repro.app.client.ApplicationClient`.

    One instance models *all* the users of one app in one region; the
    aggregate request rate is the rate curve passed to
    :meth:`run_workload`.  Outcomes land in the same
    :class:`~repro.app.client.WorkloadRecorder` the per-request driver
    fills, so figure code is traffic-mode-agnostic.
    """

    def __init__(self, engine: Engine, network: Network,
                 discovery: ServiceDiscovery, runtime: AppRuntime,
                 app_name: str, region: str,
                 capacity: int = 8, service_time: float = 0.0,
                 cv_service2: float = 1.0,
                 overload_threshold: float = 0.95,
                 load_feed_interval: float = 15.0,
                 tracer: Tracer = NO_TRACER) -> None:
        self.engine = engine
        self.network = network
        self.runtime = runtime
        self.app_name = app_name
        self.region = region
        self.capacity = capacity
        self.service_time = service_time
        self.cv_service2 = cv_service2
        self.overload_threshold = overload_threshold
        self.load_feed_interval = load_feed_interval
        self.tracer = tracer

        self._map = None
        self._flows: Dict[str, _Flow] = {}
        self._total_share = 0.0
        self._healthy_share = 0.0
        #: serving address -> healthy share resolved there.
        self._share_by_address: Dict[str, float] = {}
        #: address (routed or serving) -> shard ids to reprice on change.
        self._flows_by_address: Dict[str, Set[str]] = {}
        #: address -> last-seen (mutations, endpoint-alive) fingerprint.
        self._fingerprints: Dict[str, Tuple[int, bool]] = {}
        self._servers: Dict[str, FluidServer] = {}

        self.rate: Optional[Callable[[float], float]] = None
        self.recorder: Optional[WorkloadRecorder] = None
        self.driver: Optional[EpochDriver] = None
        self.latency_p99 = TimeSeries(name=f"fluid/{app_name}/{region}/p99")

        # Headline counters (mirroring the router's).
        self.map_updates = 0
        self.delta_reprices = 0
        self.full_reprices = 0
        self.epochs = 0
        self.arrivals_total = 0.0
        self.ok_total = 0.0
        self.failed_total = 0.0
        self.overload_onsets = 0
        self.overload_recoveries = 0

        self._load_accum = 0.0
        self._last_feed = engine.now
        self._subscription = discovery.subscribe(app_name, self._on_map,
                                                 deltas=True)

    def close(self) -> None:
        self._subscription.cancel()
        if self.driver is not None:
            self.driver.stop()

    # -- workload entry point ------------------------------------------------

    def run_workload(self, duration: float, rate: Callable[[float], float],
                     recorder: WorkloadRecorder,
                     epoch: float = 5.0,
                     driver: Optional[EpochDriver] = None) -> EpochDriver:
        """Drive ``rate(t)`` requests/s for ``duration`` seconds.

        Mirrors ``ApplicationClient.run_workload`` but integrates whole
        epochs instead of scheduling per-request events.  Returns the
        :class:`~repro.sim.fluid.EpochDriver` (shared drivers let several
        fluid clients tick in lockstep).
        """
        self.rate = rate
        self.recorder = recorder
        if driver is None:
            driver = EpochDriver(self.engine, epoch=epoch, tracer=self.tracer)
        driver.add(self)
        if not driver._started:
            driver.start(until=self.engine.now + duration)
        self.driver = driver
        return driver

    # -- map / flow bookkeeping ----------------------------------------------

    def _on_map(self, shard_map, delta=None) -> None:
        previous = self._map
        if previous is not None and shard_map.version <= previous.version:
            return  # fan-out can reorder deliveries; ignore stale ones
        self._map = shard_map
        self.map_updates += 1
        if (delta is not None and previous is not None
                and delta.base_version == previous.version
                and not delta.removed):
            # The PR 6 hook: reprice exactly the changed flows.
            for entry in delta.changed:
                self._reprice_entry(entry)
            self.delta_reprices += len(delta.changed)
        else:
            self._rebuild(shard_map)

    def _rebuild(self, shard_map) -> None:
        """Resync against a full snapshot.

        Jittered fan-out reorders deliveries during publish bursts, so
        delta-aware subscriptions resync often; a naive rebuild would
        reprice every flow each time.  Instead walk the columnar map
        directly (no entry materialization) and reprice only flows whose
        route or key share actually differs — serving-side staleness is
        the per-epoch fingerprint revalidation's job, not the map's.
        """
        self.full_reprices += 1
        flows = self._flows
        index = shard_map.key_index
        shard_ids = index.shard_ids
        lows = index.key_lows
        highs = index.key_highs
        primary_at = shard_map.primary_at
        for i, shard_id in enumerate(shard_ids):
            primary = primary_at(i)
            flow = flows.get(shard_id)
            if flow is None:
                flow = _Flow(shard_id, float(highs[i] - lows[i]))
                flows[shard_id] = flow
                self._total_share += flow.share
                self._apply_route(flow, primary)
                continue
            share = float(highs[i] - lows[i])
            if share != flow.share:
                self._retract(flow)
                self._total_share += share - flow.share
                flow.share = share
                self._apply_route(flow, primary)
            elif flow.routed != primary:
                self._retract(flow)
                self._apply_route(flow, primary)
        if len(flows) != len(shard_ids):
            present = set(shard_ids)
            for shard_id in [s for s in flows if s not in present]:
                flow = flows.pop(shard_id)
                self._retract(flow)
                self._total_share -= flow.share

    def _reprice_entry(self, entry) -> None:
        flow = self._flows.get(entry.shard_id)
        share = float(entry.key_high - entry.key_low)
        if flow is None:
            flow = _Flow(entry.shard_id, share)
            self._flows[entry.shard_id] = flow
            self._total_share += share
        else:
            self._retract(flow)  # retract under the old share
            if share != flow.share:  # split/merge repartition
                self._total_share += share - flow.share
                flow.share = share
        self._apply_route(flow, entry.primary)

    # -- serving-side resolution (mirrors ApplicationServer semantics) -------

    def _resolve(self, address: Optional[str], shard_id: str,
                 depth: int = 0) -> Optional[str]:
        """The address that would actually serve, following §4.3 chains.

        ``None`` means the request the event path would send here fails:
        no endpoint, endpoint down, no server, shard not hosted, or a
        PREPARING replica reached directly (it only serves forwarded
        traffic — exactly ``ApplicationServer._handle_app_request``).
        """
        if address is None or depth > _MAX_FORWARD_DEPTH:
            return None
        network = self.network
        if not network.has_endpoint(address):
            return None
        if not network.endpoint(address).up:
            return None
        server = self.runtime.server_at(address)
        if server is None:
            return None
        hosted = server.hosted(shard_id)
        if hosted is None:
            return None
        state = hosted.state
        if state is HostedState.ACTIVE:
            return address
        if state is HostedState.FORWARDING:
            return self._resolve(hosted.forward_to, shard_id, depth + 1)
        # PREPARING: serves only requests forwarded from the old owner.
        return address if depth > 0 else None

    def _fingerprint(self, address: str) -> Tuple[int, bool]:
        network = self.network
        alive = network.has_endpoint(address) and network.endpoint(address).up
        server = self.runtime.server_at(address)
        return (server.mutations if server is not None else -1, alive)

    def _index_address(self, address: str, shard_id: str) -> None:
        bucket = self._flows_by_address.get(address)
        if bucket is None:
            bucket = set()
            self._flows_by_address[address] = bucket
            self._fingerprints[address] = self._fingerprint(address)
        bucket.add(shard_id)

    def _retract(self, flow: _Flow) -> None:
        """Remove a flow's contribution to every aggregate."""
        if flow.healthy:
            self._healthy_share -= flow.share
            serving = flow.serving
            remaining = self._share_by_address.get(serving, 0.0) - flow.share
            if remaining <= 1e-12:
                self._share_by_address.pop(serving, None)
            else:
                self._share_by_address[serving] = remaining
        for address in (flow.routed, flow.serving):
            if address is None:
                continue
            bucket = self._flows_by_address.get(address)
            if bucket is not None:
                bucket.discard(flow.shard_id)
                if not bucket:
                    del self._flows_by_address[address]
                    self._fingerprints.pop(address, None)
        flow.healthy = False
        flow.routed = flow.serving = flow.server_region = None

    def _apply_route(self, flow: _Flow, routed: Optional[str]) -> None:
        """Price a flow against the current serving truth."""
        serving = self._resolve(routed, flow.shard_id)
        flow.routed = routed
        flow.serving = serving
        if routed is not None:
            self._index_address(routed, flow.shard_id)
        if serving is None:
            flow.healthy = False
            flow.server_region = None
            return
        if serving != routed:
            self._index_address(serving, flow.shard_id)
        flow.healthy = True
        flow.server_region = self.network.endpoint(serving).region
        self._healthy_share += flow.share
        self._share_by_address[serving] = (
            self._share_by_address.get(serving, 0.0) + flow.share)

    def _revalidate(self) -> None:
        """Reprice flows of addresses whose serving state changed.

        O(addresses) fingerprint probes per epoch; repricing work is
        O(flows of changed addresses) — the discrete-transition budget.
        """
        fingerprints = self._fingerprints
        dirty: List[str] = []
        for address, seen in fingerprints.items():
            fresh = self._fingerprint(address)
            if fresh != seen:
                dirty.append(address)
        for address in dirty:
            shard_ids = self._flows_by_address.get(address)
            if not shard_ids:
                continue
            for shard_id in list(shard_ids):
                flow = self._flows[shard_id]
                routed = flow.routed
                self._retract(flow)
                self._apply_route(flow, routed)
        # Refresh after repricing: _apply_route may have (re)indexed the
        # same addresses with pre-reprice fingerprints.
        for address in dirty:
            if address in self._fingerprints:
                self._fingerprints[address] = self._fingerprint(address)

    # -- the epoch integrator (called by EpochDriver) ------------------------

    def advance(self, t0: float, t1: float) -> None:
        dt = t1 - t0
        if dt <= 0.0 or self.rate is None:
            return
        self._revalidate()
        from ..workloads.load import mean_rate
        rate_now = clamped_rate(mean_rate(self.rate, t0, t1))
        arrivals = rate_now * dt
        mid = (t0 + t1) / 2.0

        total = self._total_share
        if total <= 0.0 or not self._flows:
            ok = 0.0
            failed = arrivals
            healthy_fraction = 0.0
        else:
            healthy_fraction = min(1.0, self._healthy_share / total)
            ok = arrivals * healthy_fraction
            failed = arrivals - ok

        # Per-address M/G/k: utilization, queueing delay, overload shedding.
        mean_latency, p99_latency, shed = self._price_addresses(
            rate_now, total if total > 0 else 1.0, t1)
        if shed > 0.0:
            shed_arrivals = min(ok, shed * arrivals)
            ok -= shed_arrivals
            failed += shed_arrivals

        recorder = self.recorder
        if recorder is not None:
            recorder.record_bulk(mid, ok, failed,
                                 mean_latency if ok > 0.0 else None)
        if ok > 0.0 and p99_latency is not None:
            self.latency_p99.record(mid, p99_latency)

        self.epochs += 1
        self.arrivals_total += arrivals
        self.ok_total += ok
        self.failed_total += failed

        # Feed served load into the real servers' per-shard accounting so
        # the §5 load-balancing loop sees fluid traffic too.
        self._load_accum += arrivals
        if t1 - self._last_feed >= self.load_feed_interval:
            self._feed_load(t1)

        tracer = self.tracer
        if tracer.enabled:
            tracer.instant("fluid", "epoch", t1, {
                "app": self.app_name, "client": self.region,
                "t0": round(t0, 9), "t1": round(t1, 9),
                "arrivals": round(arrivals, 6), "ok": round(ok, 6),
                "failed": round(failed, 6),
                "healthy_share": round(healthy_fraction, 9),
                "flows": len(self._flows)})

    def _price_addresses(self, rate_now: float, total_share: float,
                         now: float) -> Tuple[Optional[float],
                                              Optional[float], float]:
        """(mean latency, p99 latency, shed fraction) for this epoch.

        Iterates the serving addresses (not the flows): each address gets
        its offered arrival rate, M/G/k wait, and overload state; the
        latency distribution is the share-weighted mixture across
        addresses, with the p99 read from the mixture's weighted quantile.
        """
        share_by_address = self._share_by_address
        if not share_by_address:
            return None, None, 0.0
        latency = self.network.latency
        jitter = latency.jitter_fraction
        j_mean = jitter_mean_factor(jitter)
        j_p99 = jitter_p99_factor(jitter)
        servers = self._servers
        tracer = self.tracer
        healthy = self._healthy_share
        shed_weight = 0.0
        mean_acc = 0.0
        buckets: List[Tuple[float, float]] = []  # (p99, weight)
        for address, share in share_by_address.items():
            server = servers.get(address)
            if server is None:
                region = self.network.endpoint(address).region
                server = FluidServer(address, region, self.capacity,
                                     self.service_time, self.cv_service2)
                servers[address] = server
            arrival = rate_now * share / total_share
            server.offer(arrival)
            if server.utilization >= self.overload_threshold:
                if not server.overloaded:
                    server.overloaded = True
                    self.overload_onsets += 1
                    if tracer.enabled:
                        tracer.instant("fluid", "overload_onset", now, {
                            "address": address,
                            "utilization": round(server.utilization, 6)})
            elif server.overloaded:
                server.overloaded = False
                self.overload_recoveries += 1
                if tracer.enabled:
                    tracer.instant("fluid", "overload_recovery", now, {
                        "address": address,
                        "utilization": round(server.utilization, 6)})
            served = server.served_fraction()
            if served < 1.0:
                shed_weight += share * (1.0 - served)
            rtt = 2.0 * latency.base_latency(self.region, server.region)
            wait = server.wait if server.wait != float("inf") else 0.0
            mean_lat = rtt * j_mean + wait + server.service_time
            p99_lat = (rtt * j_p99 + wait * _WAIT_TAIL_P99
                       + server.service_time)
            mean_acc += share * mean_lat
            buckets.append((p99_lat, share))
        if healthy <= 0.0:
            return None, None, 0.0
        mean_latency = mean_acc / healthy
        buckets.sort()
        threshold = 0.99 * healthy
        acc = 0.0
        p99_latency = buckets[-1][0]
        for value, weight in buckets:
            acc += weight
            if acc >= threshold:
                p99_latency = value
                break
        return mean_latency, p99_latency, shed_weight / healthy

    def _feed_load(self, now: float) -> None:
        """Flush accumulated arrivals into hosted-shard counters."""
        arrivals = self._load_accum
        self._load_accum = 0.0
        self._last_feed = now
        if arrivals <= 0.0:
            return
        total = self._total_share or 1.0
        runtime = self.runtime
        for flow in self._flows.values():
            if not flow.healthy:
                continue
            server = runtime.server_at(flow.serving)
            if server is None:
                continue
            hosted = server.hosted(flow.shard_id)
            if hosted is not None:
                hosted.requests_served += arrivals * flow.share / total

    # -- introspection -------------------------------------------------------

    def healthy_fraction(self) -> float:
        if self._total_share <= 0.0:
            return 0.0
        return self._healthy_share / self._total_share

    def flow_count(self) -> int:
        return len(self._flows)
