"""The SM programming model (paper Figure 11).

An application server implements:

    add_shard(shardID, role)
    drop_shard(shardID)
    change_role(shardID, current_role, new_role)
    prepare_add_shard(shardID, current_owner, role)
    prepare_drop_shard(shardID, new_owner, role)

and application clients use ``get_client(app_name, key)`` and call plain
RPC functions on the returned client.  ``repro.app.server`` provides a
full implementation driven by the orchestrator; applications plug in a
:class:`RequestHandler` for their business logic only — the intentionally
tiny surface that made SM easy to adopt.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol

from ..core.shard_map import Role


class ShardHost(Protocol):
    """Server-side shard lifecycle API (Figure 11), invoked by the
    orchestrator over RPC."""

    def add_shard(self, shard_id: str, role: Role) -> None:
        """Officially take ownership of a shard replica."""

    def drop_shard(self, shard_id: str) -> None:
        """Give up a shard replica (after forwarding drains, if migrating)."""

    def change_role(self, shard_id: str, current_role: Role,
                    new_role: Role) -> None:
        """Promote/demote between primary and secondary."""

    def prepare_add_shard(self, shard_id: str, current_owner: Optional[str],
                          role: Role) -> None:
        """Migration step 1: get ready to take over; serve only forwarded
        requests until add_shard arrives."""

    def prepare_drop_shard(self, shard_id: str, new_owner: str,
                           role: Role) -> None:
        """Migration step 2: start forwarding every request to the new
        owner."""


class RequestHandler(Protocol):
    """Application business logic, invoked for each request a server owns."""

    def __call__(self, shard_id: str, request: Any) -> Any:
        ...


class NotOwnerError(RuntimeError):
    """The server does not (or not yet / no longer) own the shard."""
