"""Scatter-gather application: fan-out reads merged at the slowest leg.

The workload where shard placement hurts most (ROADMAP item 4(d)): one
logical request fans out to ``fanout`` shards in parallel and the reply
is assembled only when the *last* leg lands, so per-request latency is
the max over K legs.  A single overloaded or mid-migration shard drags
every scatter request that touches it — tail amplification — which makes
continuous load balancing (Fig 23) visible in client latency rather than
only in per-server load counters.

Two pieces live here:

* :class:`ScatterGatherClient` — drives scatter requests through the
  ordinary :class:`~repro.discovery.router.ServiceRouter` retry machinery
  (each leg is a normal keyed request) and journals ``scatter/fanout``,
  ``scatter/leg`` and ``scatter/merge`` instants so the TraceChecker can
  audit that every merge waited for all of its legs.
* :class:`QueuedServiceHandler` — a deterministic single-server FIFO
  queue for the application side.  The simulator's RPC latency model is
  load-independent, so without this, placement quality would never show
  up in latency; with it, a server's response time grows with its queue
  depth and hot placement becomes measurable as P99.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from ..discovery.router import RequestOutcome
from ..sim.network import AsyncReply
from .client import ApplicationClient, WorkloadRecorder, clamped_rate


class QueuedServiceHandler:
    """Deterministic per-server FIFO queue with fixed service time.

    Each request occupies the server for ``service_time`` simulated
    seconds; a request arriving while the server is busy waits behind the
    queue (Lindley recursion on ``busy_until``).  The reply is an
    :class:`~repro.sim.network.AsyncReply` completed at departure time,
    so response latency = queueing delay + service time.  No RNG is
    involved — the handler adds no draws to seeded traces.
    """

    __slots__ = ("engine", "service_time", "busy_until", "served",
                 "address")

    def __init__(self, engine, service_time: float,
                 address: str = "") -> None:
        if service_time <= 0:
            raise ValueError("service_time must be > 0")
        self.engine = engine
        self.service_time = service_time
        self.busy_until = 0.0
        self.served = 0
        self.address = address

    def queue_depth(self) -> float:
        """Backlog ahead of a request arriving now, in requests."""
        backlog = self.busy_until - self.engine.now
        return max(0.0, backlog) / self.service_time

    def __call__(self, shard_id: str, request: Any) -> AsyncReply:
        now = self.engine.now
        start = self.busy_until if self.busy_until > now else now
        done = start + self.service_time
        self.busy_until = done
        self.served += 1
        reply = AsyncReply()
        self.engine.call_at(done, reply.complete,
                            {"shard": shard_id, "served_by": self.address})
        return reply


def queued_handler_factory(cluster, service_time: float,
                           registry: Optional[Dict[str, "QueuedServiceHandler"]]
                           = None) -> Callable:
    """A ``deploy_app`` handler factory installing one
    :class:`QueuedServiceHandler` per container (on the container's
    region engine, so PDES mode schedules departures locally).  Pass a
    ``registry`` dict to keep handles for queue-depth sampling."""

    def factory(container) -> QueuedServiceHandler:
        engine = cluster.engine_for(container.machine.region)
        handler = QueuedServiceHandler(engine, service_time,
                                       address=container.address)
        if registry is not None:
            registry[container.address] = handler
        return handler

    return factory


class _ScatterOp:
    """One scatter-gather request: K router legs, merge at the last."""

    __slots__ = ("engine", "tracer", "scatter_id", "fanout", "start",
                 "done_legs", "failed_legs", "attempts", "on_done")

    def __init__(self, client: "ScatterGatherClient", key: int,
                 on_done: Optional[Callable[[RequestOutcome], None]]) -> None:
        router = client.client.router
        self.engine = client.engine
        self.tracer = router.network.tracer
        self.scatter_id = f"{client.client.address}/{client._next_id}"
        client._next_id += 1
        self.fanout = client.fanout
        self.start = self.engine.now
        self.done_legs = 0
        self.failed_legs = 0
        self.attempts = 0
        self.on_done = on_done
        self.tracer.instant("scatter", "fanout", self.start, {
            "scatter": self.scatter_id, "legs": self.fanout, "key": key})
        key_space = client.key_space
        stride = client.leg_stride
        prefer_primary = client.prefer_primary
        leg_done = self._leg_done
        for leg in range(self.fanout):
            leg_key = (key + leg * stride) % key_space
            router.start_request(leg_key, {"scatter": self.scatter_id},
                                 prefer_primary=prefer_primary,
                                 on_done=leg_done)

    def _leg_done(self, outcome: RequestOutcome) -> None:
        self.done_legs += 1
        self.attempts += outcome.attempts
        if not outcome.ok:
            self.failed_legs += 1
        self.tracer.instant("scatter", "leg", self.engine.now, {
            "scatter": self.scatter_id, "ok": outcome.ok,
            "shard": outcome.shard_id, "latency": outcome.latency})
        if self.done_legs == self.fanout:
            self._merge()

    def _merge(self) -> None:
        now = self.engine.now
        ok = self.failed_legs == 0
        latency = now - self.start  # merge at the slowest leg: max-of-K
        self.tracer.instant("scatter", "merge", now, {
            "scatter": self.scatter_id, "ok": ok, "legs": self.done_legs,
            "failed_legs": self.failed_legs, "latency": latency})
        if self.on_done is not None:
            self.on_done(RequestOutcome(
                ok=ok, latency=latency, attempts=self.attempts,
                error="" if ok else f"{self.failed_legs} legs failed"))


class _ScatterWorkloadOp:
    """Open-loop Poisson scatter stream, mirroring ``_WorkloadOp``."""

    __slots__ = ("engine", "client", "recorder", "rng", "rate", "key_fn",
                 "end_time", "expovariate", "finished")

    def __init__(self, client: "ScatterGatherClient", duration: float,
                 rate: Callable[[float], float],
                 key_fn: Callable[[random.Random], int],
                 recorder: WorkloadRecorder, rng: random.Random) -> None:
        self.engine = client.engine
        self.client = client
        self.recorder = recorder
        self.rng = rng
        self.rate = rate
        self.key_fn = key_fn
        self.end_time = self.engine.now + duration
        self.expovariate = rng.expovariate
        self.finished = False
        if self.engine.now < self.end_time:
            self._schedule_next()
        else:
            self.finished = True

    def _schedule_next(self) -> None:
        engine = self.engine
        engine.call_after(
            self.expovariate(clamped_rate(self.rate(engine.now))),
            self._tick)

    def _tick(self) -> None:
        engine = self.engine
        if engine.now >= self.end_time:
            self.finished = True
            return
        self.recorder.sent += 1
        key = self.key_fn(self.rng)
        _ScatterOp(self.client, key, self._record)
        self._schedule_next()

    def _record(self, outcome: RequestOutcome) -> None:
        self.recorder.record(self.engine.now, outcome)


class ScatterGatherClient:
    """Fan-out reads across ``fanout`` shards through one app client.

    Leg ``i`` of a scatter anchored at ``key`` reads
    ``(key + i * leg_stride) % key_space`` — with ``leg_stride`` set to
    (a multiple of) the per-shard key width, the legs land on ``fanout``
    distinct shards, which is the point: the reply is only as fast as
    the slowest shard touched.
    """

    def __init__(self, client: ApplicationClient, key_space: int,
                 fanout: int = 4, leg_stride: Optional[int] = None,
                 prefer_primary: bool = True) -> None:
        if fanout < 1:
            raise ValueError("fanout must be >= 1")
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        self.client = client
        self.engine = client.engine
        self.key_space = key_space
        self.fanout = fanout
        self.leg_stride = (key_space // max(1, fanout)
                           if leg_stride is None else leg_stride)
        self.prefer_primary = prefer_primary
        self._next_id = 0

    def scatter(self, key: int,
                on_done: Optional[Callable[[RequestOutcome], None]] = None,
                ) -> _ScatterOp:
        """Fire one scatter-gather request anchored at ``key``."""
        return _ScatterOp(self, key, on_done)

    def run_workload(self, duration: float, rate: Callable[[float], float],
                     key_fn: Callable[[random.Random], int],
                     recorder: WorkloadRecorder,
                     rng: Optional[random.Random] = None,
                     ) -> _ScatterWorkloadOp:
        """Open-loop Poisson scatter stream for ``duration`` seconds.

        Each arrival draws one anchor key from ``key_fn`` and fans out
        ``fanout`` legs; the recorder sees one logical outcome per
        scatter (success = all legs succeeded, latency = slowest leg).
        """
        rng = rng or random.Random(0)
        return _ScatterWorkloadOp(self, duration, rate, key_fn, recorder,
                                  rng)
