"""Application-side pieces: SM library, servers, clients, runtime glue."""

from .client import ApplicationClient, WorkloadRecorder, get_client
from .fluid import FluidClient, FluidServer
from .interfaces import NotOwnerError, RequestHandler, ShardHost
from .runtime import AppRuntime
from .server import ApplicationServer, HostedShard, HostedState

__all__ = [
    "ApplicationClient",
    "WorkloadRecorder",
    "get_client",
    "FluidClient",
    "FluidServer",
    "NotOwnerError",
    "RequestHandler",
    "ShardHost",
    "AppRuntime",
    "ApplicationServer",
    "HostedShard",
    "HostedState",
]
