"""Application-side pieces: SM library, servers, clients, runtime glue."""

from .client import ApplicationClient, WorkloadRecorder, get_client
from .interfaces import NotOwnerError, RequestHandler, ShardHost
from .runtime import AppRuntime
from .server import ApplicationServer, HostedShard, HostedState

__all__ = [
    "ApplicationClient",
    "WorkloadRecorder",
    "get_client",
    "NotOwnerError",
    "RequestHandler",
    "ShardHost",
    "AppRuntime",
    "ApplicationServer",
    "HostedShard",
    "HostedState",
]
