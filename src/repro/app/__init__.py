"""Application-side pieces: SM library, servers, clients, runtime glue."""

from .client import ApplicationClient, WorkloadRecorder, get_client
from .fluid import FluidClient, FluidServer
from .interfaces import NotOwnerError, RequestHandler, ShardHost
from .runtime import AppRuntime
from .scatter import (QueuedServiceHandler, ScatterGatherClient,
                      queued_handler_factory)
from .server import ApplicationServer, HostedShard, HostedState

__all__ = [
    "ApplicationClient",
    "WorkloadRecorder",
    "get_client",
    "FluidClient",
    "FluidServer",
    "NotOwnerError",
    "RequestHandler",
    "ShardHost",
    "AppRuntime",
    "ApplicationServer",
    "HostedShard",
    "HostedState",
    "QueuedServiceHandler",
    "ScatterGatherClient",
    "queued_handler_factory",
]
