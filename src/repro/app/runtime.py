"""Glue between containers and application servers.

The :class:`AppRuntime` wires container lifecycle hooks so that a fresh
:class:`~repro.app.server.ApplicationServer` comes up whenever a container
(re)starts and tears down when it stops — gracefully on planned stops,
abruptly on crashes (which leaves the ZooKeeper session to expire, i.e.
realistic failure-detection latency).

It also maintains the machine → addresses directory used to apply
NETWORK_LOSS maintenance (§4.2) without stopping containers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..cluster.container import Container
from ..coordination.zookeeper import ZooKeeper
from ..core.spec import AppSpec
from ..sim.engine import Engine
from ..sim.network import Network
from .interfaces import RequestHandler
from .server import ApplicationServer

HandlerFactory = Callable[[Container], RequestHandler]


class AppRuntime:
    """Runs one application's servers across any number of containers."""

    def __init__(self, engine: Engine, network: Network, zookeeper: ZooKeeper,
                 spec: AppSpec, handler_factory: HandlerFactory,
                 base_loads: Optional[Callable[[str], Dict[str, float]]] = None,
                 zk_heartbeat_interval: float = 2.0,
                 drop_grace: float = 5.0,
                 on_server_created: Optional[
                     Callable[[ApplicationServer], None]] = None,
                 engine_for: Optional[
                     Callable[[str], Engine]] = None) -> None:
        self.engine = engine
        #: PDES mode: resolves a region to its engine so each server's
        #: request handling runs on its own region's engine.  ``None``
        #: (the default) keeps every server on the runtime engine.
        self.engine_for = engine_for
        self.network = network
        self.zookeeper = zookeeper
        self.spec = spec
        self.handler_factory = handler_factory
        self.base_loads = base_loads
        self.zk_heartbeat_interval = zk_heartbeat_interval
        self.drop_grace = drop_grace
        self.on_server_created = on_server_created
        self.servers: Dict[str, ApplicationServer] = {}
        self._graceful_stop: Set[str] = set()
        self._machine_addresses: Dict[str, Set[str]] = {}

    # -- container wiring ---------------------------------------------------------

    def attach(self, containers: Iterable[Container]) -> None:
        """Register lifecycle hooks; bring up servers for running containers."""
        for container in containers:
            container.on_started.append(self._on_started)
            container.on_stopping.append(self._on_stopping)
            container.on_stopped.append(self._on_stopped)
            if container.running:
                self._on_started(container)

    def _on_started(self, container: Container) -> None:
        if container.address in self.servers:
            return
        engine = self.engine
        if self.engine_for is not None:
            engine = self.engine_for(container.machine.region)
        server = ApplicationServer(
            engine=engine,
            network=self.network,
            zookeeper=self.zookeeper,
            spec=self.spec,
            container=container,
            handler=self.handler_factory(container),
            base_loads=self.base_loads,
            drop_grace=self.drop_grace,
            zk_heartbeat_interval=self.zk_heartbeat_interval,
        )
        self.servers[container.address] = server
        machine_id = container.machine.machine_id
        self._machine_addresses.setdefault(machine_id, set()).add(
            container.address)
        if self.on_server_created is not None:
            self.on_server_created(server)

    def _on_stopping(self, container: Container) -> None:
        # A "stopping" notification means the stop is planned.
        self._graceful_stop.add(container.address)

    def _on_stopped(self, container: Container) -> None:
        server = self.servers.pop(container.address, None)
        if server is None:
            return
        graceful = container.address in self._graceful_stop
        self._graceful_stop.discard(container.address)
        server.shutdown(graceful=graceful)
        bucket = self._machine_addresses.get(container.machine.machine_id)
        if bucket is not None:
            bucket.discard(container.address)

    # -- network-level maintenance (§4.2 NETWORK_LOSS) -------------------------------

    def set_machine_network(self, machine_id: str, up: bool) -> None:
        """Make a machine's servers unreachable without stopping them."""
        for address in self._machine_addresses.get(machine_id, set()):
            if self.network.has_endpoint(address):
                self.network.set_endpoint_up(address, up)

    # -- queries ------------------------------------------------------------------

    def server_at(self, address: str) -> Optional[ApplicationServer]:
        return self.servers.get(address)

    def running_addresses(self) -> List[str]:
        return sorted(self.servers)
