"""Application clients: ``get_client(app_name, key)`` and workload drivers.

A client owns a network endpoint, a :class:`~repro.discovery.ServiceRouter`
fed by service discovery, and helpers to run open-loop request streams
whose outcomes land in a :class:`~repro.metrics.RateWindow` (success rate
per bucket — the Fig 17 y-axis) and a latency series (the Fig 19 y-axis).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..discovery.router import RequestOutcome, ServiceRouter
from ..discovery.service_discovery import ServiceDiscovery
from ..metrics.timeseries import RateWindow, TimeSeries
from ..sim.engine import Delay, Engine, Process
from ..sim.network import Network


@dataclass
class WorkloadRecorder:
    """Collects request outcomes for one workload run."""

    success: RateWindow
    latency: TimeSeries = field(default_factory=lambda: TimeSeries(name="latency"))
    sent: int = 0
    succeeded: int = 0
    failed: int = 0

    @classmethod
    def with_bucket(cls, bucket_width: float) -> "WorkloadRecorder":
        return cls(success=RateWindow(bucket_width))

    def record(self, now: float, outcome: RequestOutcome) -> None:
        self.success.record(now, outcome.ok)
        if outcome.ok:
            self.succeeded += 1
            self.latency.record(now, outcome.latency)
        else:
            self.failed += 1


class ApplicationClient:
    """One client instance in one region."""

    def __init__(self, engine: Engine, network: Network,
                 discovery: ServiceDiscovery, app_name: str,
                 address: str, region: str,
                 attempts: int = 3, rpc_timeout: float = 1.0,
                 retry_backoff: float = 0.5) -> None:
        self.engine = engine
        self.network = network
        self.app_name = app_name
        self.address = address
        self.region = region
        network.register(address, region)
        self.router = ServiceRouter(engine, network, address,
                                    attempts=attempts, rpc_timeout=rpc_timeout,
                                    retry_backoff=retry_backoff)
        self._subscription = discovery.subscribe(app_name,
                                                 self.router.on_map_update)

    def close(self) -> None:
        self._subscription.cancel()
        if self.network.has_endpoint(self.address):
            self.network.unregister(self.address)

    # -- single requests --------------------------------------------------------

    def request(self, key: int, payload: Any = None,
                prefer_primary: bool = True) -> Process:
        """Fire one request as a process; its result is a RequestOutcome."""
        return self.engine.process(
            self.router.request(key, payload, prefer_primary=prefer_primary))

    # -- workloads ---------------------------------------------------------------

    def run_workload(self, duration: float, rate: Callable[[float], float],
                     key_fn: Callable[[random.Random], int],
                     recorder: WorkloadRecorder,
                     rng: Optional[random.Random] = None,
                     payload: Any = None,
                     payload_fn: Optional[Callable[[int], Any]] = None,
                     prefer_primary: bool = True) -> Process:
        """Open-loop Poisson request stream for ``duration`` seconds.

        ``rate(t)`` gives the instantaneous requests/second (pass a
        constant via ``lambda t: r``; diurnal curves for Fig 18/23 come
        from ``repro.workloads.load``).  ``payload_fn(key)`` builds a
        per-request payload; it wins over the static ``payload``.
        """
        rng = rng or random.Random(0)
        end_time = self.engine.now + duration

        def request_process(key: int) -> Generator[Any, Any, None]:
            body = payload_fn(key) if payload_fn is not None else payload
            outcome = yield from self.router.request(
                key, body, prefer_primary=prefer_primary)
            recorder.record(self.engine.now, outcome)

        def generator() -> Generator[Any, Any, None]:
            while self.engine.now < end_time:
                current_rate = max(1e-9, rate(self.engine.now))
                yield Delay(rng.expovariate(current_rate))
                if self.engine.now >= end_time:
                    break
                recorder.sent += 1
                self.engine.process(request_process(key_fn(rng)))

        return self.engine.process(generator(), name=f"workload:{self.address}")


def get_client(engine: Engine, network: Network, discovery: ServiceDiscovery,
               app_name: str, region: str, address: Optional[str] = None,
               **router_options: Any) -> ApplicationClient:
    """The paper's client entry point, bound to our simulated substrate."""
    if address is None:
        address = f"client/{app_name}/{region}/{network.rpcs_sent}"
    return ApplicationClient(engine, network, discovery, app_name,
                             address, region, **router_options)
