"""Application clients: ``get_client(app_name, key)`` and workload drivers.

A client owns a network endpoint, a :class:`~repro.discovery.ServiceRouter`
fed by service discovery, and helpers to run open-loop request streams
whose outcomes land in a :class:`~repro.metrics.RateWindow` (success rate
per bucket — the Fig 17 y-axis) and a latency series (the Fig 19 y-axis).

The workload driver is the hottest loop in the request-heavy figures
(17/18/19), so it is a slotted state machine (:class:`_WorkloadOp`)
scheduled through zero-closure ``call_after`` callbacks: one arrival tick
fires one :class:`~repro.discovery.router._RequestOp` and schedules the
next Poisson arrival, with no generator frames or per-request processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional
from weakref import WeakKeyDictionary

from ..discovery.router import RequestOutcome, ServiceRouter
from ..discovery.service_discovery import ServiceDiscovery
from ..metrics.timeseries import RateWindow, TimeSeries
from ..sim.engine import Engine, Process
from ..sim.network import Network

#: Floor applied to every rate-curve sample (requests/second).
_MIN_RATE = 1e-9

#: Ceiling applied to every rate-curve sample.  An infinite rate would
#: give zero inter-arrival delay — the open-loop driver then schedules
#: same-instant events forever and the clock never advances.
_MAX_RATE = 1e12


def clamped_rate(value: float) -> float:
    """Clamp a rate-curve sample to a finite positive rate.

    The per-request driver feeds the result to an exponential sampler
    (zero would divide-by-zero, a negative rate would produce a negative
    delay the engine rejects) and the fluid epoch integrator divides by
    it, so every pathological input maps to a safe finite value:

    * negative, zero, ``-inf`` -> ``_MIN_RATE`` ("next arrival never");
    * ``+inf`` or absurdly large -> ``_MAX_RATE`` (a finite flood —
      an infinite rate would stall the clock at one instant);
    * ``NaN`` -> ``_MIN_RATE`` (a curve with no defined value sends no
      traffic rather than corrupting downstream arithmetic).

    Ordinary rates in ``[_MIN_RATE, _MAX_RATE]`` pass through unchanged,
    so seeded event-mode traces are unaffected by the clamping.
    """
    if value != value:  # NaN: no comparison below would catch it
        return _MIN_RATE
    if value > _MAX_RATE:
        return _MAX_RATE
    if value < _MIN_RATE:
        return _MIN_RATE
    return value


@dataclass
class WorkloadRecorder:
    """Collects request outcomes for one workload run."""

    success: RateWindow
    latency: TimeSeries = field(default_factory=lambda: TimeSeries(name="latency"))
    sent: int = 0
    succeeded: int = 0
    failed: int = 0

    @classmethod
    def with_bucket(cls, bucket_width: float) -> "WorkloadRecorder":
        return cls(success=RateWindow(bucket_width))

    def record(self, now: float, outcome: RequestOutcome) -> None:
        self.success.record(now, outcome.ok)
        if outcome.ok:
            self.succeeded += 1
            self.latency.record(now, outcome.latency)
        else:
            self.failed += 1

    def record_bulk(self, now: float, ok: float, failed: float,
                    mean_latency: Optional[float] = None) -> None:
        """Fold an analytically integrated batch of outcomes in at once.

        The fluid traffic engine integrates whole epochs of arrivals and
        lands them here, so figure code reads the same recorder fields
        and RateWindow buckets in either traffic mode.  Counts may be
        fractional (they are expectations, not samples).
        """
        if ok:
            self.success.record(now, True, ok)
            self.succeeded += ok
            if mean_latency is not None:
                self.latency.record(now, mean_latency)
        if failed:
            self.success.record(now, False, failed)
            self.failed += failed
        self.sent += ok + failed


class _WorkloadOp:
    """Open-loop Poisson arrival loop as a slotted state machine.

    Each ``_tick`` (a zero-closure scheduled callback) fires one request
    through the router's retry state machine and schedules the next
    arrival from the (clamped) rate curve.  The RNG draw order — key
    sample, request-latency sample inside ``network.rpc``, inter-arrival
    sample — is exactly the old generator's, so seeded traces are
    bit-identical.
    """

    __slots__ = ("engine", "router", "recorder", "rng", "rate", "key_fn",
                 "payload", "payload_fn", "prefer_primary", "end_time",
                 "expovariate", "finished")

    def __init__(self, engine: Engine, router: ServiceRouter,
                 duration: float, rate: Callable[[float], float],
                 key_fn: Callable[[random.Random], int],
                 recorder: WorkloadRecorder, rng: random.Random,
                 payload: Any, payload_fn: Optional[Callable[[int], Any]],
                 prefer_primary: bool) -> None:
        self.engine = engine
        self.router = router
        self.recorder = recorder
        self.rng = rng
        self.rate = rate
        self.key_fn = key_fn
        self.payload = payload
        self.payload_fn = payload_fn
        self.prefer_primary = prefer_primary
        self.end_time = engine.now + duration
        self.expovariate = rng.expovariate  # cached inter-arrival sampler
        self.finished = False
        if engine.now < self.end_time:
            self._schedule_next()
        else:
            self.finished = True

    def _schedule_next(self) -> None:
        engine = self.engine
        self.engine.call_after(
            self.expovariate(clamped_rate(self.rate(engine.now))),
            self._tick)

    def _tick(self) -> None:
        engine = self.engine
        if engine.now >= self.end_time:
            self.finished = True
            return
        recorder = self.recorder
        recorder.sent += 1
        key = self.key_fn(self.rng)
        payload_fn = self.payload_fn
        body = payload_fn(key) if payload_fn is not None else self.payload
        self.router.start_request(key, body,
                                  prefer_primary=self.prefer_primary,
                                  on_done=self._record)
        self._schedule_next()

    def _record(self, outcome: RequestOutcome) -> None:
        self.recorder.record(self.engine.now, outcome)


class ApplicationClient:
    """One client instance in one region."""

    def __init__(self, engine: Engine, network: Network,
                 discovery: ServiceDiscovery, app_name: str,
                 address: str, region: str,
                 attempts: int = 3, rpc_timeout: float = 1.0,
                 retry_backoff: float = 0.5) -> None:
        self.engine = engine
        self.network = network
        self.app_name = app_name
        self.address = address
        self.region = region
        network.register(address, region)
        self.router = ServiceRouter(engine, network, address,
                                    attempts=attempts, rpc_timeout=rpc_timeout,
                                    retry_backoff=retry_backoff)
        # Delta-aware: steady-state deliveries carry a ShardMapDelta and
        # the router evicts only changed shards' cached routes.
        self._subscription = discovery.subscribe(app_name,
                                                 self.router.on_map_update,
                                                 deltas=True)

    def close(self) -> None:
        self._subscription.cancel()
        if self.network.has_endpoint(self.address):
            self.network.unregister(self.address)

    # -- single requests --------------------------------------------------------

    def request(self, key: int, payload: Any = None,
                prefer_primary: bool = True) -> Process:
        """Fire one request as a process; its result is a RequestOutcome."""
        return self.engine.process(
            self.router.request(key, payload, prefer_primary=prefer_primary))

    # -- workloads ---------------------------------------------------------------

    def run_workload(self, duration: float, rate: Callable[[float], float],
                     key_fn: Callable[[random.Random], int],
                     recorder: WorkloadRecorder,
                     rng: Optional[random.Random] = None,
                     payload: Any = None,
                     payload_fn: Optional[Callable[[int], Any]] = None,
                     prefer_primary: bool = True) -> _WorkloadOp:
        """Open-loop Poisson request stream for ``duration`` seconds.

        ``rate(t)`` gives the instantaneous requests/second (pass a
        constant via ``lambda t: r``; diurnal curves for Fig 18/23 come
        from ``repro.workloads.load``).  ``payload_fn(key)`` builds a
        per-request payload; it wins over the static ``payload``.
        Returns the running :class:`_WorkloadOp` (``finished`` flips once
        the stream passes ``duration``).
        """
        rng = rng or random.Random(0)
        return _WorkloadOp(self.engine, self.router, duration, rate, key_fn,
                           recorder, rng, payload, payload_fn, prefer_primary)


#: network -> {app_name -> next client index}: a monotonic per-app counter
#: for default client addresses.  Keyed weakly per network so independent
#: simulations never share numbering.
_CLIENT_SEQUENCES: "WeakKeyDictionary[Network, Dict[str, int]]" = (
    WeakKeyDictionary())


def _next_client_index(network: Network, app_name: str) -> int:
    sequences = _CLIENT_SEQUENCES.get(network)
    if sequences is None:
        sequences = {}
        _CLIENT_SEQUENCES[network] = sequences
    index = sequences.get(app_name, 0)
    sequences[app_name] = index + 1
    return index


def get_client(engine: Engine, network: Network, discovery: ServiceDiscovery,
               app_name: str, region: str, address: Optional[str] = None,
               **router_options: Any) -> ApplicationClient:
    """The paper's client entry point, bound to our simulated substrate.

    Default addresses come from a monotonic per-app counter, not from
    ``network.rpcs_sent``: the old scheme collided when two clients were
    created with no traffic in between, and silently depended on how much
    load had already run.
    """
    if address is None:
        index = _next_client_index(network, app_name)
        address = f"client/{app_name}/{region}/{index}"
    return ApplicationClient(engine, network, discovery, app_name,
                             address, region, **router_options)
