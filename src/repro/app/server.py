"""The application server with the embedded SM library.

One :class:`ApplicationServer` runs inside each container.  It implements
the Figure 11 shard-lifecycle API (driven by the orchestrator over RPC),
the §4.3 forwarding behaviour that makes graceful primary migration drop
zero requests, the §3.2 ZooKeeper integration (ephemeral liveness node +
assignment bootstrap), and per-shard load accounting for the §5
load-balancing loop.

Application authors supply only a :class:`~repro.app.interfaces.RequestHandler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..cluster.container import Container
from ..coordination.zookeeper import NodeExistsError, Session, ZooKeeper
from ..core.shard_map import Role
from ..core.spec import AppSpec
from ..sim.engine import Engine, every
from ..sim.network import AsyncReply, Network, NetworkError
from .interfaces import NotOwnerError, RequestHandler

SERVERS_PATH = "/sm/{app}/servers"
ASSIGNMENTS_PATH = "/sm/{app}/assignments"


class HostedState(str, Enum):
    PREPARING = "preparing"    # §4.3 step 1: only forwarded requests
    ACTIVE = "active"
    FORWARDING = "forwarding"  # §4.3 step 2: everything goes to new owner


@dataclass(slots=True)
class HostedShard:
    """One shard replica currently hosted by this server.

    Slotted: the per-request served counter is bumped on every client
    request, so the instance must not carry a ``__dict__``.  The counter
    is batch accounting — it only accumulates here and is flushed (and
    normalised to a rate) by ``sm.report_load``.
    """

    shard_id: str
    role: Role
    state: HostedState
    forward_to: Optional[str] = None
    requests_served: int = 0
    requests_forwarded: int = 0


class ApplicationServer:
    """Server-side of one container: SM library + application handler."""

    def __init__(self, engine: Engine, network: Network, zookeeper: ZooKeeper,
                 spec: AppSpec, container: Container, handler: RequestHandler,
                 base_loads: Optional[Callable[[str], Dict[str, float]]] = None,
                 drop_grace: float = 5.0,
                 zk_heartbeat_interval: float = 2.0) -> None:
        self.engine = engine
        self.network = network
        self.zookeeper = zookeeper
        self.spec = spec
        self.container = container
        self.handler = handler
        self.base_loads = base_loads
        self.drop_grace = drop_grace
        self.address = container.address
        self.region = container.machine.region
        self._shards: Dict[str, HostedShard] = {}
        self._stopped = False
        self._last_report_time = engine.now
        # Monotone hosting-mutation counter: bumped whenever the set of
        # hosted shards (or any hosted shard's state) changes.  The fluid
        # traffic engine polls it per epoch to reprice only the flows of
        # servers that actually changed — the event path never reads it.
        self.mutations = 0

        self.endpoint = network.register(self.address, self.region)
        self.endpoint.on("app.request", self._handle_app_request)
        self.endpoint.on("sm.add_shard", self._rpc_add_shard)
        self.endpoint.on("sm.drop_shard", self._rpc_drop_shard)
        self.endpoint.on("sm.change_role", self._rpc_change_role)
        self.endpoint.on("sm.prepare_add_shard", self._rpc_prepare_add_shard)
        self.endpoint.on("sm.prepare_drop_shard", self._rpc_prepare_drop_shard)
        self.endpoint.on("sm.report_load", self._rpc_report_load)
        self.endpoint.on("sm.ping", lambda _payload: "pong")

        # §3.2: SM-library-created ephemeral node for failure detection.
        self.session: Session = zookeeper.create_session()
        servers_root = SERVERS_PATH.format(app=spec.name)
        self._liveness_path = f"{servers_root}/{self._zk_name()}"
        try:
            zookeeper.create(self._liveness_path,
                             data={"address": self.address,
                                   "region": self.region,
                                   "machine": container.machine.machine_id},
                             ephemeral=True, session=self.session,
                             make_parents=True)
        except NodeExistsError:
            # Fast restart before the old session expired: take over.
            zookeeper.delete(self._liveness_path)
            zookeeper.create(self._liveness_path,
                             data={"address": self.address,
                                   "region": self.region,
                                   "machine": container.machine.machine_id},
                             ephemeral=True, session=self.session,
                             make_parents=True)
        self._stop_heartbeat = every(engine, zk_heartbeat_interval,
                                     self._heartbeat)
        self._bootstrap_from_zookeeper()

    def _zk_name(self) -> str:
        return self.address.replace("/", ":")

    # -- lifecycle ----------------------------------------------------------------

    def _heartbeat(self) -> None:
        if not self._stopped and not self.session.expired:
            self.session.heartbeat()

    def reconnect_zk(self) -> bool:
        """Re-establish the ZooKeeper session after an expiry.

        A real SM library reconnects when its session is lost (GC pause,
        ZK leader election, chaos-injected session kill): it opens a new
        session and re-creates its ephemeral liveness node, taking over
        from a stale node if the old one has not been reaped yet.  Returns
        True when a new session was established.
        """
        if self._stopped or not self.session.expired:
            return False
        self.session = self.zookeeper.create_session()
        data = {"address": self.address, "region": self.region,
                "machine": self.container.machine.machine_id}
        try:
            self.zookeeper.create(self._liveness_path, data=data,
                                  ephemeral=True, session=self.session,
                                  make_parents=True)
        except NodeExistsError:
            self.zookeeper.delete(self._liveness_path)
            self.zookeeper.create(self._liveness_path, data=data,
                                  ephemeral=True, session=self.session,
                                  make_parents=True)
        return True

    def _bootstrap_from_zookeeper(self) -> None:
        """§3.2: read the shard assignment written by the orchestrator,
        'without dependency on the SM control plane'."""
        path = (ASSIGNMENTS_PATH.format(app=self.spec.name)
                + f"/{self._zk_name()}")
        if not self.zookeeper.exists(path):
            return
        assigned = self.zookeeper.get(path) or []
        for entry in assigned:
            shard_id = entry["shard_id"]
            role = Role(entry["role"])
            self._shards[shard_id] = HostedShard(
                shard_id=shard_id, role=role, state=HostedState.ACTIVE)
            self.mutations += 1

    def shutdown(self, graceful: bool) -> None:
        """Tear down when the container stops.

        Graceful stops close the ZooKeeper session so the orchestrator
        learns instantly; crashes leave the session to expire (failure
        detection takes the session timeout).
        """
        if self._stopped:
            return
        self._stopped = True
        self._stop_heartbeat()
        self._shards.clear()
        self.mutations += 1
        if self.network.has_endpoint(self.address):
            self.network.unregister(self.address)
        if graceful:
            self.session.close()

    # -- hosting state (used by tests and the orchestrator RPCs) --------------------

    def hosted(self, shard_id: str) -> Optional[HostedShard]:
        return self._shards.get(shard_id)

    def hosted_shards(self) -> List[HostedShard]:
        return list(self._shards.values())

    # -- Figure 11 API over RPC -------------------------------------------------------

    def _rpc_add_shard(self, payload: Dict[str, Any]) -> str:
        shard_id = payload["shard_id"]
        role = Role(payload["role"])
        hosted = self._shards.get(shard_id)
        if hosted is not None and hosted.state is HostedState.PREPARING:
            # §4.3 step 3: the prepared target officially takes over.
            hosted.state = HostedState.ACTIVE
            hosted.role = role
        else:
            self._shards[shard_id] = HostedShard(
                shard_id=shard_id, role=role, state=HostedState.ACTIVE)
        self.mutations += 1
        return "ok"

    def _rpc_drop_shard(self, payload: Dict[str, Any]) -> str:
        shard_id = payload["shard_id"]
        hosted = self._shards.get(shard_id)
        if hosted is None:
            return "ok"  # idempotent
        if hosted.state is HostedState.FORWARDING:
            # §4.3 step 5: keep forwarding until requests stop arriving,
            # modelled as a fixed grace period, then drop.
            self.engine.call_after(self.drop_grace, self._deferred_drop,
                                   shard_id)
        else:
            del self._shards[shard_id]
            self.mutations += 1
        return "ok"

    def _deferred_drop(self, shard_id: str) -> None:
        if self._shards.pop(shard_id, None) is not None:
            self.mutations += 1

    def _rpc_change_role(self, payload: Dict[str, Any]) -> str:
        shard_id = payload["shard_id"]
        new_role = Role(payload["new_role"])
        hosted = self._shards.get(shard_id)
        if hosted is None:
            raise NotOwnerError(f"{self.address} does not host {shard_id}")
        hosted.role = new_role
        self.mutations += 1
        return "ok"

    def _rpc_prepare_add_shard(self, payload: Dict[str, Any]) -> str:
        shard_id = payload["shard_id"]
        role = Role(payload["role"])
        self._shards[shard_id] = HostedShard(
            shard_id=shard_id, role=role, state=HostedState.PREPARING)
        self.mutations += 1
        return "ok"

    def _rpc_prepare_drop_shard(self, payload: Dict[str, Any]) -> str:
        shard_id = payload["shard_id"]
        new_owner = payload["new_owner"]
        hosted = self._shards.get(shard_id)
        if hosted is None:
            raise NotOwnerError(f"{self.address} does not host {shard_id}")
        hosted.state = HostedState.FORWARDING
        hosted.forward_to = new_owner
        self.mutations += 1
        return "ok"

    def _rpc_report_load(self, _payload: Any) -> Dict[str, Dict[str, float]]:
        """Per-shard load vector: measured request rate plus any
        application-supplied static metrics (storage bytes, etc.)."""
        elapsed = max(1e-9, self.engine.now - self._last_report_time)
        self._last_report_time = self.engine.now
        report: Dict[str, Dict[str, float]] = {}
        for shard_id, hosted in self._shards.items():
            load = {"request_rate": hosted.requests_served / elapsed,
                    "shard_count": 1.0}
            if self.base_loads is not None:
                load.update(self.base_loads(shard_id))
            report[shard_id] = load
            hosted.requests_served = 0
        return report

    # -- client requests -----------------------------------------------------------------

    def _handle_app_request(self, message: Dict[str, Any]) -> Any:
        # Hot path first: one dict probe into the shard table, one state
        # check, one slotted counter bump, then straight into the handler.
        shard_id = message["shard_id"]
        hosted = self._shards.get(shard_id)
        if hosted is None:
            raise NotOwnerError(f"{self.address} does not own {shard_id}")
        state = hosted.state
        if state is HostedState.ACTIVE:
            hosted.requests_served += 1
            return self.handler(shard_id, message["payload"])
        if state is HostedState.PREPARING:
            if not message.get("forwarded"):
                # §4.3 step 1: "Pnew processes a primary-related request
                # only if the request is forwarded from Pold."
                raise NotOwnerError(
                    f"{self.address} is preparing {shard_id}, not yet owner")
            hosted.requests_served += 1
            return self.handler(shard_id, message["payload"])
        return self._forward(hosted, message)

    def _forward(self, hosted: HostedShard, message: Dict[str, Any]) -> AsyncReply:
        """§4.3 step 2: relay the request to the new owner, then relay the
        response back — the client never sees the migration."""
        if hosted.forward_to is None:
            raise NetworkError(f"{self.address}: forwarding without a target")
        hosted.requests_forwarded += 1
        reply = AsyncReply()
        forwarded = dict(message)
        forwarded["forwarded"] = True
        call = self.network.rpc(self.address, hosted.forward_to,
                                "app.request", forwarded)

        def on_done(_value: Any) -> None:
            result = call.result
            if result is not None and result.ok:
                reply.complete(result.value)
            else:
                reply.fail(result.error if result else "forwarding failed")

        call.done._add_waiter(on_done)
        return reply
