"""Fleet-wide planned-event generation.

Figure 1 contrasts container stops from planned maintenance/software
updates with unplanned failures (≈1000x apart).  This module generates
planned events at configurable cadences so the Fig 1 experiment can count
both kinds over simulated time:

* software upgrades: every job is upgraded roughly ``upgrade_interval``
  seconds (Facebook pushes most services daily, §8.2);
* hardware/kernel maintenance: each machine receives maintenance every
  ``maintenance_interval`` seconds ("SM gracefully handles millions of
  machine and network maintenance events per month", §8.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Engine, every
from .taskcontrol import MaintenanceImpact
from .twine import Twine


@dataclass
class PlannedEventStats:
    """Counts of planned container stops by cause."""

    upgrades: int = 0
    maintenance: int = 0

    @property
    def total(self) -> int:
        return self.upgrades + self.maintenance


@dataclass
class MaintenanceSchedule:
    """Drives recurring planned events against a Twine instance."""

    engine: Engine
    twine: Twine
    rng: random.Random
    upgrade_interval: float = 86_400.0          # daily releases
    maintenance_interval: float = 30 * 86_400.0  # monthly per machine
    maintenance_duration: float = 1_800.0
    upgrade_concurrency_fraction: float = 0.1
    restart_duration: float = 60.0
    stats: PlannedEventStats = field(default_factory=PlannedEventStats)
    _stoppers: List = field(default_factory=list)

    def start(self, jobs: List[str]) -> None:
        for job in jobs:
            # Stagger each job's upgrade within the interval.
            offset = self.rng.uniform(0, self.upgrade_interval)
            stopper = every(self.engine, self.upgrade_interval,
                            lambda j=job: self._upgrade(j),
                            start_after=offset)
            self._stoppers.append(stopper)
        for machine in self.twine.machines:
            offset = self.rng.uniform(0, self.maintenance_interval)
            stopper = every(self.engine, self.maintenance_interval,
                            lambda mid=machine.machine_id: self._maintain(mid),
                            start_after=offset)
            self._stoppers.append(stopper)

    def stop(self) -> None:
        for stopper in self._stoppers:
            stopper()
        self._stoppers.clear()

    def _upgrade(self, job: str) -> None:
        containers = [c for c in self.twine.job_containers(job) if c.running]
        if not containers:
            return
        concurrency = max(1, int(len(containers) * self.upgrade_concurrency_fraction))
        try:
            self.twine.start_rolling_upgrade(job, concurrency, self.restart_duration)
        except RuntimeError:
            return  # an upgrade is already being negotiated; skip this round
        self.stats.upgrades += len(containers)

    def _maintain(self, machine_id: str) -> None:
        start = self.engine.now + 60.0  # one minute of advance notice
        end = start + self.maintenance_duration
        if not self.twine.machine_up(machine_id):
            return
        # Count stops when the window actually opens, not at notice time:
        # containers start/stop/move during the 60 s notice period, so a
        # count taken now would misstate Fig 1's planned-event totals.
        self.twine.schedule_maintenance(
            [machine_id], start, end, MaintenanceImpact.RUNTIME_STATE_LOSS,
            on_begin=lambda notice, stopped: self._count_maintenance(stopped))

    def _count_maintenance(self, stopped: int) -> None:
        self.stats.maintenance += stopped
