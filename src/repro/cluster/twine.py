"""Twine: the (simulated) regional cluster manager.

Twine owns the machines of one region, runs jobs as groups of containers,
and executes container lifecycle operations.  Before executing a
*negotiable* operation (upgrade, autoscale) it consults the registered
:class:`~repro.cluster.taskcontrol.TaskController` via the TaskControl
protocol; *non-negotiable* events (hardware maintenance, kernel updates)
are announced in advance and executed unconditionally at their scheduled
time (§4.1–4.2).

One Twine instance per region: "two Twine instances independently plan to
restart two containers in different regions" (§4.1) is exactly the
scenario the geo-aware SM TaskController must coordinate, so the region
boundary lives here.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..sim.engine import Engine
from .container import Container, ContainerState
from .taskcontrol import (
    ContainerOp,
    MaintenanceImpact,
    MaintenanceNotice,
    OpKind,
    OpReason,
    TaskController,
)
from .topology import Machine, Topology


@dataclass
class TwineConfig:
    """Timing knobs for container lifecycle operations (seconds)."""

    negotiation_interval: float = 5.0
    container_stop_duration: float = 2.0
    container_start_duration: float = 10.0
    move_extra_duration: float = 5.0


@dataclass
class RollingUpgrade:
    """Progress of one rolling upgrade of a job."""

    job: str
    total: int
    max_concurrent: int
    restart_duration: float
    started_at: float
    completed: int = 0
    finished_at: Optional[float] = None

    @property
    def done(self) -> bool:
        return self.completed >= self.total


class Twine:
    """Cluster manager for the machines of a single region."""

    def __init__(self, engine: Engine, region: str, machines: Sequence[Machine],
                 config: Optional[TwineConfig] = None,
                 rng: Optional[random.Random] = None,
                 machine_network_hook: Optional[Callable[[str, bool], None]] = None) -> None:
        for machine in machines:
            if machine.region != region:
                raise ValueError(
                    f"machine {machine.machine_id} is in {machine.region}, "
                    f"not {region}"
                )
        self.engine = engine
        self.region = region
        self.machines = list(machines)
        self.config = config or TwineConfig()
        self.rng = rng or random.Random(0)
        self._machine_network_hook = machine_network_hook
        self._controller: Optional[TaskController] = None
        self._containers: Dict[str, Container] = {}
        self._jobs: Dict[str, List[Container]] = {}
        self._pending_ops: List[ContainerOp] = []
        self._in_flight: Dict[str, ContainerOp] = {}
        self._op_counter = itertools.count()
        self._notice_counter = itertools.count()
        self._upgrades: Dict[str, RollingUpgrade] = {}
        self._negotiating = False
        # Why each down machine is down ("crash", "maint:<notice_id>", ...).
        # A machine transitions up<->down only on its first hold / last
        # release, so an unplanned crash overlapping a maintenance window
        # can neither double-stop containers nor end the window early.
        self._down_holds: Dict[str, Set[str]] = {}
        self._maint_on_begin: Dict[str, Callable[[MaintenanceNotice, int], None]] = {}
        # Statistics used by experiments.
        self.container_stops_planned = 0
        self.container_stops_unplanned = 0

    # -- controller registration ----------------------------------------------

    def register_task_controller(self, controller: TaskController) -> None:
        self._controller = controller
        if self._pending_ops and not self._negotiating:
            self._start_negotiation_loop()

    def set_machine_network_hook(self,
                                 hook: Optional[Callable[[str, bool], None]]
                                 ) -> None:
        """Install the machine→endpoints hook after construction (the
        harness builds Twines before any application runtime exists)."""
        self._machine_network_hook = hook

    # -- job management --------------------------------------------------------

    def create_job(self, job: str, count: int,
                   machine_filter: Optional[Callable[[Machine], bool]] = None,
                   start_immediately: bool = True) -> List[Container]:
        """Deploy ``count`` containers, one per machine, rack-spread.

        Containers get sequential task IDs starting from the job's current
        size (§2.2.1).
        """
        if job in self._jobs and self._jobs[job]:
            base_task_id = max(c.task_id for c in self._jobs[job]) + 1
        else:
            base_task_id = 0
        eligible = [m for m in self.machines
                    if m.up and (machine_filter is None or machine_filter(m))]
        occupied = {c.machine.machine_id for c in self._containers.values()
                    if c.state is not ContainerState.STOPPED}
        free = [m for m in eligible if m.machine_id not in occupied]
        if len(free) < count:
            raise RuntimeError(
                f"{self.region}: need {count} machines for job {job!r}, "
                f"only {len(free)} free"
            )
        # Spread across racks: sort by (rack occupancy) round-robin.
        free.sort(key=lambda m: (m.rack, m.machine_id))
        chosen = free[::max(1, len(free) // count)][:count]
        if len(chosen) < count:
            chosen = free[:count]
        containers = []
        job_list = self._jobs.setdefault(job, [])
        for offset, machine in enumerate(chosen):
            container = Container(
                container_id=f"{self.region}/{job}/{base_task_id + offset}",
                job=job,
                task_id=base_task_id + offset,
                machine=machine,
                state=ContainerState.STOPPED,
            )
            self._containers[container.container_id] = container
            job_list.append(container)
            containers.append(container)
            if start_immediately:
                self._start_container(container)
        return containers

    def job_containers(self, job: str) -> List[Container]:
        return list(self._jobs.get(job, []))

    def all_containers(self) -> List[Container]:
        return list(self._containers.values())

    def _start_container(self, container: Container) -> None:
        container.state = ContainerState.STARTING
        self.engine.call_after(self.config.container_start_duration,
                               lambda: self._finish_start(container))

    def _finish_start(self, container: Container) -> None:
        if container.state is ContainerState.STARTING and container.machine.up:
            container.mark_running()

    # -- negotiable operations (§4.1) -------------------------------------------

    def submit_op(self, kind: OpKind, container: Container, reason: OpReason,
                  target_machine_id: Optional[str] = None) -> ContainerOp:
        """Queue a negotiable operation for controller review."""
        op = ContainerOp(
            op_id=f"{self.region}/op{next(self._op_counter)}",
            kind=kind,
            container=container,
            reason=reason,
            region=self.region,
            target_machine_id=target_machine_id,
        )
        self._pending_ops.append(op)
        if not self._negotiating:
            self._start_negotiation_loop()
        return op

    def start_rolling_upgrade(self, job: str, max_concurrent: int,
                              restart_duration: float) -> RollingUpgrade:
        """Restart every container of ``job``, at most ``max_concurrent`` at
        a time, each restart taking ``restart_duration`` seconds of downtime.
        """
        containers = [c for c in self._jobs.get(job, []) if c.running]
        if not containers:
            raise RuntimeError(f"{self.region}: job {job!r} has no running containers")
        upgrade = RollingUpgrade(
            job=job,
            total=len(containers),
            max_concurrent=max(1, max_concurrent),
            restart_duration=restart_duration,
            started_at=self.engine.now,
        )
        self._upgrades[job] = upgrade
        for container in containers:
            self.submit_op(OpKind.RESTART, container, OpReason.UPGRADE)
        return upgrade

    def upgrade_status(self, job: str) -> RollingUpgrade:
        return self._upgrades[job]

    def _start_negotiation_loop(self) -> None:
        self._negotiating = True
        self.engine.call_after(self.config.negotiation_interval, self._negotiate)

    def _job_in_flight(self, job: str) -> int:
        return sum(1 for op in self._in_flight.values() if op.container.job == job)

    def _concurrency_room(self, op: ContainerOp) -> bool:
        """Twine's own per-job concurrency limit for rolling upgrades."""
        upgrade = self._upgrades.get(op.container.job)
        if upgrade is None or op.reason is not OpReason.UPGRADE:
            return True
        return self._job_in_flight(op.container.job) < upgrade.max_concurrent

    def _negotiate(self) -> None:
        if not self._pending_ops:
            self._negotiating = False
            return
        proposable = [op for op in self._pending_ops
                      if op.container.machine.up and self._concurrency_room(op)]
        if proposable:
            if self._controller is not None:
                approved = self._controller.review_ops(proposable)
            else:
                approved = list(proposable)
            # Re-apply the concurrency cap in approval order: the controller
            # may approve more than the per-job limit allows at once.
            pending_ids = {op.op_id for op in self._pending_ops}
            for op in approved:
                if op.op_id not in pending_ids:
                    raise RuntimeError(f"controller approved unknown op {op!r}")
                if not self._concurrency_room(op):
                    continue
                pending_ids.discard(op.op_id)
                self._pending_ops = [p for p in self._pending_ops
                                     if p.op_id != op.op_id]
                self._execute(op)
        self.engine.call_after(self.config.negotiation_interval, self._negotiate)

    # -- operation execution ----------------------------------------------------

    def _execute(self, op: ContainerOp) -> None:
        self._in_flight[op.op_id] = op
        container = op.container
        if op.kind is OpKind.RESTART:
            self._do_restart(op, container)
        elif op.kind is OpKind.STOP:
            self._do_stop(op, container)
        elif op.kind is OpKind.START:
            self._do_start(op, container)
        elif op.kind is OpKind.MOVE:
            self._do_move(op, container)
        else:  # pragma: no cover - enum is exhaustive
            raise RuntimeError(f"unknown op kind {op.kind!r}")

    def _finish_op(self, op: ContainerOp) -> None:
        self._in_flight.pop(op.op_id, None)
        upgrade = self._upgrades.get(op.container.job)
        if upgrade is not None and op.reason is OpReason.UPGRADE:
            upgrade.completed += 1
            if upgrade.done and upgrade.finished_at is None:
                upgrade.finished_at = self.engine.now
        if self._controller is not None:
            self._controller.on_op_finished(op)

    def _do_restart(self, op: ContainerOp, container: Container) -> None:
        upgrade = self._upgrades.get(container.job)
        downtime = upgrade.restart_duration if upgrade else (
            self.config.container_stop_duration + self.config.container_start_duration)
        container.mark_stopping()
        self.container_stops_planned += 1

        def stopped() -> None:
            container.mark_stopped()

            def started() -> None:
                if container.machine.up:
                    container.restarts += 1
                    container.mark_running()
                self._finish_op(op)

            self.engine.call_after(downtime, started)

        self.engine.call_after(self.config.container_stop_duration, stopped)

    def _do_stop(self, op: ContainerOp, container: Container) -> None:
        container.mark_stopping()
        self.container_stops_planned += 1

        def stopped() -> None:
            container.mark_stopped()
            self._finish_op(op)

        self.engine.call_after(self.config.container_stop_duration, stopped)

    def _do_start(self, op: ContainerOp, container: Container) -> None:
        self._start_container(container)
        self.engine.call_after(self.config.container_start_duration,
                               lambda: self._finish_op(op))

    def _do_move(self, op: ContainerOp, container: Container) -> None:
        if op.target_machine_id is None:
            raise RuntimeError(f"move op {op.op_id} has no target machine")
        target = next((m for m in self.machines
                       if m.machine_id == op.target_machine_id), None)
        if target is None:
            raise RuntimeError(f"unknown target machine {op.target_machine_id!r}")
        container.mark_stopping()
        self.container_stops_planned += 1

        def stopped() -> None:
            container.mark_stopped()
            container.relocate(target)

            def started() -> None:
                if target.up:
                    container.mark_running()
                self._finish_op(op)

            self.engine.call_after(
                self.config.move_extra_duration + self.config.container_start_duration,
                started)

        self.engine.call_after(self.config.container_stop_duration, stopped)

    # -- unplanned failures -------------------------------------------------------

    def machine_up(self, machine_id: str) -> bool:
        """Public liveness query (fault injectors must not poke ``_machine``)."""
        return self._machine(machine_id).up

    def fail_machine(self, machine_id: str, cause: str = "crash") -> int:
        """Unplanned machine crash: containers stop with no warning.

        ``cause`` labels the down-hold; a machine stays down until every
        cause that took it down has released it (see
        :meth:`repair_machine`).  Returns the number of containers this
        crash stopped (0 if the machine was already down).
        """
        return self._take_machine_down(machine_id, cause, planned=False)

    def repair_machine(self, machine_id: str, cause: str = "crash") -> bool:
        """Release one down-hold; True when the machine actually came up."""
        return self._release_machine(machine_id, cause)

    def _take_machine_down(self, machine_id: str, cause: str,
                           planned: bool) -> int:
        """Add a down-hold; on the first hold, take the machine down.

        Returns how many containers this call stopped (0 when the machine
        was already down or the hold already existed).
        """
        machine = self._machine(machine_id)
        holds = self._down_holds.setdefault(machine_id, set())
        if cause in holds:
            return 0
        holds.add(cause)
        if not machine.up:
            # Already down for another cause; just remember ours.
            return 0
        machine.up = False
        if self._machine_network_hook is not None:
            self._machine_network_hook(machine_id, False)
        # Planned stops take only RUNNING containers (the launch in flight
        # was never serving); a crash also kills STARTING ones.
        states = ((ContainerState.RUNNING,) if planned
                  else (ContainerState.RUNNING, ContainerState.STARTING))
        stopped = 0
        for container in self._containers.values():
            if container.machine is machine and container.state in states:
                stopped += 1
                if planned:
                    self.container_stops_planned += 1
                else:
                    self.container_stops_unplanned += 1
                container.mark_stopped()
        return stopped

    def _release_machine(self, machine_id: str, cause: str) -> bool:
        """Drop a down-hold; on the last release, bring the machine up.

        Returns True when the machine actually came back up.
        """
        machine = self._machine(machine_id)
        holds = self._down_holds.get(machine_id)
        if holds is not None:
            holds.discard(cause)
            if holds:
                return False  # someone else still holds it down
        if machine.up:
            return False
        machine.up = True
        if self._machine_network_hook is not None:
            self._machine_network_hook(machine_id, True)
        for container in self._containers.values():
            if container.machine is machine and container.state is ContainerState.STOPPED:
                self._start_container(container)
        return True

    def fail_region(self, cause: str = "crash") -> None:
        """Whole-region outage (Fig 19's failure at t=90 s)."""
        for machine in self.machines:
            self.fail_machine(machine.machine_id, cause)

    def repair_region(self, cause: str = "crash") -> None:
        for machine in self.machines:
            self.repair_machine(machine.machine_id, cause)

    def _machine(self, machine_id: str) -> Machine:
        for machine in self.machines:
            if machine.machine_id == machine_id:
                return machine
        raise KeyError(f"{self.region}: unknown machine {machine_id!r}")

    # -- non-negotiable maintenance (§4.2) ----------------------------------------

    def schedule_maintenance(self, machine_ids: Sequence[str], start_time: float,
                             end_time: float, impact: MaintenanceImpact,
                             on_begin: Optional[Callable[[MaintenanceNotice, int], None]] = None,
                             ) -> MaintenanceNotice:
        """Announce and later execute a non-negotiable maintenance event.

        The controller gets the advance notice immediately; at ``start_time``
        the physical impact is applied and reverted at ``end_time``.
        ``on_begin`` (if given) fires when the window actually opens, with
        the notice and the number of containers the window stopped — the
        accounting hook for schedulers that must not guess at notice time
        what the fleet will look like 60 s later.
        """
        if start_time < self.engine.now:
            raise ValueError("maintenance cannot start in the past")
        if end_time <= start_time:
            raise ValueError("maintenance must end after it starts")
        notice = MaintenanceNotice(
            notice_id=f"{self.region}/maint{next(self._notice_counter)}",
            machine_ids=tuple(machine_ids),
            start_time=start_time,
            end_time=end_time,
            impact=impact,
            region=self.region,
        )
        if on_begin is not None:
            self._maint_on_begin[notice.notice_id] = on_begin
        if self._controller is not None:
            self._controller.on_maintenance_notice(notice)
        self.engine.call_at(start_time, lambda: self._begin_maintenance(notice))
        return notice

    def _begin_maintenance(self, notice: MaintenanceNotice) -> None:
        stopped = 0
        if notice.impact is MaintenanceImpact.NETWORK_LOSS:
            if self._machine_network_hook is not None:
                for machine_id in notice.machine_ids:
                    self._machine_network_hook(machine_id, False)
            self.engine.call_at(notice.end_time,
                                lambda: self._end_network_maintenance(notice))
        else:
            # Runtime/full state loss and machine loss all take the machine
            # down; they differ in what the *application* must rebuild.
            # Each window holds the machine under its own notice id, so an
            # overlapping crash (or second window) cannot double-stop
            # containers or end this window early.
            for machine_id in notice.machine_ids:
                stopped += self._take_machine_down(
                    machine_id, f"maint:{notice.notice_id}", planned=True)
            self.engine.call_at(notice.end_time,
                                lambda: self._end_machine_maintenance(notice))
        on_begin = self._maint_on_begin.pop(notice.notice_id, None)
        if on_begin is not None:
            on_begin(notice, stopped)

    def _end_network_maintenance(self, notice: MaintenanceNotice) -> None:
        if self._machine_network_hook is not None:
            for machine_id in notice.machine_ids:
                # A machine that crashed during the window keeps its
                # endpoints down; its repair will bring them back.
                if self._machine(machine_id).up:
                    self._machine_network_hook(machine_id, True)

    def _end_machine_maintenance(self, notice: MaintenanceNotice) -> None:
        for machine_id in notice.machine_ids:
            self._release_machine(machine_id, f"maint:{notice.notice_id}")
