"""Fleet topology: regions → data centers → racks → machines.

Facebook "operates out of tens of geo-distributed regions.  Each region
consists of multiple data centers" (§2.2.2), and SM spreads shard replicas
"across fault domains at all levels, including regions, data centers, and
racks" (§3.4).  This module models exactly that hierarchy.

Machines carry a capacity vector over named metrics (e.g. ``cpu``,
``storage``, ``shard_count``) because Fig 21's workload has heterogeneous
hardware ("the storage capacity varies by up to 20%").
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Sequence


class FaultDomainLevel(str, Enum):
    """Spread scopes, from widest to narrowest."""

    REGION = "region"
    DATACENTER = "datacenter"
    RACK = "rack"
    HOST = "host"


@dataclass(frozen=True)
class MachineSpec:
    """Static description of one machine's hardware."""

    capacity: Dict[str, float]
    has_storage: bool = False


@dataclass
class Machine:
    """A physical machine; the unit of failure and maintenance."""

    machine_id: str
    region: str
    datacenter: str
    rack: str
    capacity: Dict[str, float]
    has_storage: bool = False
    up: bool = True

    def domain(self, level: FaultDomainLevel) -> str:
        """The fault-domain identifier of this machine at ``level``."""
        if level is FaultDomainLevel.REGION:
            return self.region
        if level is FaultDomainLevel.DATACENTER:
            return self.datacenter
        if level is FaultDomainLevel.RACK:
            return self.rack
        return self.machine_id

    def capacity_of(self, metric: str) -> float:
        return self.capacity.get(metric, 0.0)


@dataclass
class Topology:
    """All machines, indexable by fault domain."""

    machines: List[Machine] = field(default_factory=list)
    _by_id: Dict[str, Machine] = field(default_factory=dict, repr=False)

    def add(self, machine: Machine) -> None:
        if machine.machine_id in self._by_id:
            raise ValueError(f"duplicate machine id {machine.machine_id!r}")
        self.machines.append(machine)
        self._by_id[machine.machine_id] = machine

    def get(self, machine_id: str) -> Machine:
        try:
            return self._by_id[machine_id]
        except KeyError:
            raise KeyError(f"unknown machine {machine_id!r}") from None

    def __len__(self) -> int:
        return len(self.machines)

    def __contains__(self, machine_id: str) -> bool:
        return machine_id in self._by_id

    def regions(self) -> List[str]:
        return sorted({m.region for m in self.machines})

    def in_region(self, region: str) -> List[Machine]:
        return [m for m in self.machines if m.region == region]

    def in_domain(self, level: FaultDomainLevel, domain: str) -> List[Machine]:
        return [m for m in self.machines if m.domain(level) == domain]

    def up_machines(self) -> List[Machine]:
        return [m for m in self.machines if m.up]


DEFAULT_CAPACITY = {"cpu": 100.0, "memory": 100.0, "shard_count": 1000.0}


def build_topology(regions: Sequence[str],
                   machines_per_region: int,
                   datacenters_per_region: int = 2,
                   racks_per_datacenter: int = 4,
                   capacity: Optional[Dict[str, float]] = None,
                   capacity_jitter: float = 0.0,
                   storage_fraction: float = 0.0,
                   rng: Optional[random.Random] = None) -> Topology:
    """Build a balanced topology.

    ``capacity_jitter`` models heterogeneous hardware: each machine's
    per-metric capacity is scaled by a uniform factor in
    [1 - jitter, 1 + jitter] (Fig 21 uses up to 20% heterogeneity).
    ``storage_fraction`` marks that fraction of machines as SSD/HDD
    machines (Fig 9's storage vs non-storage split).
    """
    if machines_per_region <= 0:
        raise ValueError("machines_per_region must be positive")
    if not 0.0 <= capacity_jitter < 1.0:
        raise ValueError(f"capacity_jitter must be in [0, 1), got {capacity_jitter!r}")
    rng = rng or random.Random(0)
    base_capacity = dict(capacity or DEFAULT_CAPACITY)
    topology = Topology()
    counter = itertools.count()
    for region in regions:
        for index in range(machines_per_region):
            dc_index = index % datacenters_per_region
            rack_index = index % (datacenters_per_region * racks_per_datacenter)
            datacenter = f"{region}.dc{dc_index}"
            rack = f"{datacenter}.rack{rack_index}"
            if capacity_jitter:
                machine_capacity = {
                    metric: value * (1.0 + rng.uniform(-capacity_jitter, capacity_jitter))
                    for metric, value in base_capacity.items()
                }
            else:
                machine_capacity = dict(base_capacity)
            topology.add(Machine(
                machine_id=f"m{next(counter):06d}",
                region=region,
                datacenter=datacenter,
                rack=rack,
                capacity=machine_capacity,
                has_storage=rng.random() < storage_fraction,
            ))
    return topology


def count_distinct_domains(machines: Iterable[Machine],
                           level: FaultDomainLevel) -> int:
    """How many distinct fault domains at ``level`` a set of machines spans."""
    return len({m.domain(level) for m in machines})
