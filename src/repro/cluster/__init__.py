"""Cluster substrate: topology, containers, Twine, TaskControl protocol."""

from .container import Container, ContainerState
from .maintenance import MaintenanceSchedule, PlannedEventStats
from .taskcontrol import (
    ApproveAllController,
    ContainerOp,
    DenyAllController,
    MaintenanceImpact,
    MaintenanceNotice,
    OpKind,
    OpReason,
    TaskController,
)
from .topology import (
    DEFAULT_CAPACITY,
    FaultDomainLevel,
    Machine,
    MachineSpec,
    Topology,
    build_topology,
    count_distinct_domains,
)
from .twine import RollingUpgrade, Twine, TwineConfig

__all__ = [
    "Container",
    "ContainerState",
    "MaintenanceSchedule",
    "PlannedEventStats",
    "ApproveAllController",
    "ContainerOp",
    "DenyAllController",
    "MaintenanceImpact",
    "MaintenanceNotice",
    "OpKind",
    "OpReason",
    "TaskController",
    "DEFAULT_CAPACITY",
    "FaultDomainLevel",
    "Machine",
    "MachineSpec",
    "Topology",
    "build_topology",
    "count_distinct_domains",
    "RollingUpgrade",
    "Twine",
    "TwineConfig",
]
