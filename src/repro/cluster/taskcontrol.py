"""The TaskControl protocol between cluster managers and controllers.

"Periodically, Twine notifies SM's TaskController of a set of pending
container operations (start/stop/restart/move) and SM's TaskController
responds with a subset of approved operations that will not endanger the
availability of any shard.  Twine delays the execution of unapproved
operations, but executes the approved operations immediately.  When those
operations finish, Twine notifies SM's TaskController" (§4.1).

This module defines the protocol's vocabulary (operations, maintenance
notices with impact levels) and the controller interface.  SM's actual
TaskController lives in ``repro.core.task_controller``; trivial
controllers for baselines live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Protocol, Sequence

from .container import Container


class OpKind(str, Enum):
    START = "start"
    STOP = "stop"
    RESTART = "restart"
    MOVE = "move"


class OpReason(str, Enum):
    """Why the cluster manager wants to perform the operation.

    UPGRADE/AUTOSCALE are negotiable (§4.1); MAINTENANCE/KERNEL are
    non-negotiable — they come with advance notice instead (§4.2).
    """

    UPGRADE = "upgrade"
    AUTOSCALE = "autoscale"
    MAINTENANCE = "maintenance"
    KERNEL_UPDATE = "kernel_update"
    MANUAL = "manual"


@dataclass(frozen=True, eq=False)
class ContainerOp:
    """One pending lifecycle operation on a container.

    Identity semantics (``eq=False``): ops are tracked by object identity
    and by ``op_id``, never by field comparison.
    """

    op_id: str
    kind: OpKind
    container: Container
    reason: OpReason
    region: str
    target_machine_id: Optional[str] = None  # for MOVE

    def __repr__(self) -> str:  # compact logs
        return f"<{self.kind.value} {self.container.container_id} ({self.reason.value})>"


class MaintenanceImpact(str, Enum):
    """Impact levels Twine attaches to a maintenance notice (§4.2)."""

    NETWORK_LOSS = "network_loss"
    RUNTIME_STATE_LOSS = "runtime_state_loss"
    FULL_STATE_LOSS = "full_state_loss"
    MACHINE_LOSS = "machine_loss"


@dataclass(frozen=True)
class MaintenanceNotice:
    """Advance notice of a non-negotiable event on a set of machines."""

    notice_id: str
    machine_ids: tuple[str, ...]
    start_time: float
    end_time: float
    impact: MaintenanceImpact
    region: str

    def duration(self) -> float:
        return self.end_time - self.start_time


class TaskController(Protocol):
    """What a cluster manager needs from a controller.

    ``review_ops`` is called on every negotiation tick with the full set of
    still-pending ops; it returns the subset safe to execute *now*.  A
    controller may start preparatory work (draining shards) for ops it is
    not yet approving.  ``on_op_finished`` closes the loop so the
    controller can approve the next batch, and ``on_maintenance_notice``
    delivers §4.2 advance notices.
    """

    def review_ops(self, ops: Sequence[ContainerOp]) -> List[ContainerOp]:
        ...

    def on_op_finished(self, op: ContainerOp) -> None:
        ...

    def on_maintenance_notice(self, notice: MaintenanceNotice) -> None:
        ...


@dataclass
class ApproveAllController:
    """Baseline controller: every operation is immediately safe.

    This is the "no TaskController" arm of Figure 17 — the cluster manager
    restarts containers as fast as its own concurrency limit allows,
    with no regard for shard availability.
    """

    approved: int = 0

    def review_ops(self, ops: Sequence[ContainerOp]) -> List[ContainerOp]:
        self.approved += len(ops)
        return list(ops)

    def on_op_finished(self, op: ContainerOp) -> None:
        return None

    def on_maintenance_notice(self, notice: MaintenanceNotice) -> None:
        return None


class TracedTaskController:
    """Transparent tracing decorator around any :class:`TaskController`.

    The harness registers this wrapper with the cluster manager when
    observability is enabled, while tests keep direct access to the
    wrapped controller's internals via ``DeployedApp.controller``.
    Emission is pure observation: approvals pass through unchanged.
    """

    __slots__ = ("inner", "_tracer")

    def __init__(self, inner: TaskController, tracer) -> None:
        self.inner = inner
        self._tracer = tracer

    def review_ops(self, ops: Sequence[ContainerOp]) -> List[ContainerOp]:
        approved = self.inner.review_ops(ops)
        if ops and self._tracer.enabled:
            self._tracer.instant("taskcontrol", "review", None,
                                 {"proposed": len(ops),
                                  "approved": len(approved)})
        return approved

    def on_op_finished(self, op: ContainerOp) -> None:
        if self._tracer.enabled:
            self._tracer.instant("taskcontrol", "op_finished", None,
                                 {"op": op.op_id, "kind": op.kind.value,
                                  "reason": op.reason.value})
        self.inner.on_op_finished(op)

    def on_maintenance_notice(self, notice: MaintenanceNotice) -> None:
        if self._tracer.enabled:
            self._tracer.instant("taskcontrol", "maintenance_notice", None,
                                 {"notice": notice.notice_id,
                                  "impact": notice.impact.value,
                                  "machines": len(notice.machine_ids)})
        self.inner.on_maintenance_notice(notice)


@dataclass
class DenyAllController:
    """Holds every negotiable op forever; useful in tests."""

    denied: int = 0

    def review_ops(self, ops: Sequence[ContainerOp]) -> List[ContainerOp]:
        self.denied += len(ops)
        return []

    def on_op_finished(self, op: ContainerOp) -> None:
        return None

    def on_maintenance_notice(self, notice: MaintenanceNotice) -> None:
        return None
