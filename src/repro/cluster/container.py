"""Containers (Twine "tasks"): the unit of deployment and lifecycle ops.

Twine "deploys an application as a group of containers called tasks.  The
taskIDs are indexed sequentially from zero" (§2.2.1) — we keep sequential
task IDs because the static-sharding baseline depends on them.

A container hosts one application server; the application layer registers
``on_started``/``on_stopping``/``on_stopped`` hooks to bring its server
process up and down with the container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, List, Optional

from .topology import Machine


class ContainerState(str, Enum):
    STARTING = "starting"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"


HookList = List[Callable[["Container"], None]]


@dataclass(eq=False)
class Container:
    """One task of a job, pinned to a machine until moved.

    ``eq=False``: containers are identity objects — two containers are the
    same container only if they are the same object.
    """

    container_id: str
    job: str
    task_id: int
    machine: Machine
    state: ContainerState = ContainerState.STOPPED
    # Lifecycle hooks, wired by the application runtime.
    on_started: HookList = field(default_factory=list)
    on_stopping: HookList = field(default_factory=list)
    on_stopped: HookList = field(default_factory=list)
    restarts: int = 0
    moves: int = 0

    @property
    def address(self) -> str:
        """Stable, globally unique network address (region-qualified:
        multiple regional Twines run the same job with task IDs that each
        start at zero).  Survives restarts and moves; the endpoint's
        *region* is re-derived from the machine on every start."""
        return self.container_id

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    def _fire(self, hooks: HookList) -> None:
        for hook in list(hooks):
            hook(self)

    def mark_running(self) -> None:
        self.state = ContainerState.RUNNING
        self._fire(self.on_started)

    def mark_stopping(self) -> None:
        self.state = ContainerState.STOPPING
        self._fire(self.on_stopping)

    def mark_stopped(self) -> None:
        self.state = ContainerState.STOPPED
        self._fire(self.on_stopped)

    def relocate(self, machine: Machine) -> None:
        if self.state is not ContainerState.STOPPED:
            raise RuntimeError(
                f"container {self.container_id} must be stopped to move "
                f"(state={self.state.value})"
            )
        self.machine = machine
        self.moves += 1
