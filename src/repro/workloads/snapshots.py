"""Solver-problem snapshots modelled on the Fig 21/22 ZippyDB workload.

"We take a snapshot of the server-capacity and shard-load information
from a production deployment of ZippyDB.  SM balances load on three
metrics: storage, CPU, and shard count.  The shard load varies
drastically — the largest shard's load is 20 times higher than that of
the smallest shard.  The server hardware is heterogeneous; e.g., the
storage capacity varies by up to 20%."

:func:`zippydb_snapshot` builds such a problem at any scale, and
:func:`attach_zippydb_goals` adds the experiment's two LB goals
(utilization < 90%; utilization within 10% of the mean) plus capacity
hard constraints — the exact violation definitions of §8.4.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.rng import skewed_loads, substream
from ..solver.api import Rebalancer
from ..solver.problem import PlacementProblem, ReplicaInfo, ServerInfo
from ..solver.specs import BalanceSpec, CapacitySpec, UtilizationSpec

ZIPPYDB_METRICS = ("cpu", "storage", "shard_count")


@dataclass(frozen=True)
class SnapshotScale:
    """One point of Fig 21's scaling sweep."""

    servers: int
    shards: int

    @property
    def label(self) -> str:
        return f"{self.shards} shards on {self.servers} servers"


# The paper's sweep; the benchmarks run a constant scale-down of this.
PAPER_SCALES = (
    SnapshotScale(servers=1_000, shards=75_000),
    SnapshotScale(servers=3_000, shards=225_000),
    SnapshotScale(servers=5_000, shards=375_000),
)


def scaled(scales: Tuple[SnapshotScale, ...] = PAPER_SCALES,
           factor: int = 10) -> List[SnapshotScale]:
    """Scale the paper's sweep down by ``factor`` preserving ratios."""
    if factor < 1:
        raise ValueError("factor must be >= 1")
    return [SnapshotScale(servers=max(1, s.servers // factor),
                          shards=max(1, s.shards // factor))
            for s in scales]


def zippydb_snapshot(scale: SnapshotScale, seed: int = 0,
                     mean_utilization: float = 0.70,
                     load_skew: float = 20.0,
                     capacity_heterogeneity: float = 0.20,
                     randomize_assignment: bool = True) -> PlacementProblem:
    """Build the stress-test problem.

    ``randomize_assignment`` reproduces the experiment's initial state:
    "each experiment run's initial state starts with a random
    shard-to-server assignment in order to stress test the allocator with
    an unusually large number of violations to fix".
    """
    rng = substream(seed, "zippydb-snapshot", scale.servers, scale.shards)
    base_capacity = 100.0
    servers = []
    for index in range(scale.servers):
        jitter = lambda: 1.0 + rng.uniform(-capacity_heterogeneity,
                                           capacity_heterogeneity)
        shard_capacity = max(1.0, scale.shards / scale.servers * 4.0)
        servers.append(ServerInfo(
            name=f"server{index:05d}",
            region="prod",
            datacenter=f"dc{index % 4}",
            rack=f"rack{index % 64}",
            capacity=(base_capacity * jitter(),      # cpu
                      base_capacity * jitter(),      # storage
                      shard_capacity),               # shard count
        ))
    mean_load_per_shard = (mean_utilization * base_capacity * scale.servers
                           / scale.shards)
    cpu_loads = skewed_loads(rng, scale.shards, skew=load_skew,
                             mean=mean_load_per_shard)
    replicas = []
    for index in range(scale.shards):
        cpu = cpu_loads[index]
        storage = cpu * rng.uniform(0.6, 1.4)
        replicas.append(ReplicaInfo(
            name=f"shard{index:06d}",
            shard=f"shard{index:06d}",
            load=(cpu, storage, 1.0),
        ))
    problem = PlacementProblem(list(ZIPPYDB_METRICS), servers, replicas)
    if randomize_assignment:
        problem.random_assignment(rng)
    return problem


def attach_zippydb_goals(problem: PlacementProblem,
                         utilization_threshold: float = 0.9,
                         balance_band: float = 0.1) -> Rebalancer:
    """§8.4's goals: "one LB goal is to prevent a server's resource
    utilization from going above 90% ... another LB goal is to cap the
    difference of server utilization within 10%"."""
    rebalancer = Rebalancer(problem)
    for metric in ("cpu", "storage"):
        rebalancer.add_constraint(CapacitySpec(metric=metric))
        rebalancer.add_goal(UtilizationSpec(metric=metric,
                                            threshold=utilization_threshold))
        rebalancer.add_goal(BalanceSpec(metric=metric, band=balance_band))
    rebalancer.add_constraint(CapacitySpec(metric="shard_count"))
    return rebalancer
