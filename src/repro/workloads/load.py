"""Load shapes: diurnal curves and skewed per-shard load assignment.

Figures 18 and 23 are driven by Facebook's real diurnal traffic ("the
client request rate ... follows a diurnal pattern", "the ever-changing
load driven by billions of Facebook product users' realtime activities").
:class:`DiurnalCurve` reproduces that shape: a day-period sinusoid with
optional noise, normalized so ``base`` is the trough and ``peak`` the
crest.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

DAY = 86_400.0


@dataclass(frozen=True)
class DiurnalCurve:
    """rate(t): trough-to-crest sinusoid with period one (simulated) day."""

    base: float
    peak: float
    period: float = DAY
    phase: float = 0.0  # seconds after t=0 when the curve crosses its mean

    def __post_init__(self) -> None:
        if self.base < 0 or self.peak < self.base:
            raise ValueError("need 0 <= base <= peak")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def __call__(self, t: float) -> float:
        mean = (self.base + self.peak) / 2.0
        amplitude = (self.peak - self.base) / 2.0
        return mean + amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period)

    def integral(self, t0: float, t1: float) -> float:
        """Exact integral of the rate over ``[t0, t1]`` (requests)."""
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        mean = (self.base + self.peak) / 2.0
        amplitude = (self.peak - self.base) / 2.0
        omega = 2.0 * math.pi / self.period
        area = mean * (t1 - t0)
        area -= (amplitude / omega) * (math.cos(omega * (t1 - self.phase))
                                       - math.cos(omega * (t0 - self.phase)))
        return area


@dataclass(frozen=True)
class ConstantCurve:
    """rate(t) = rate.  The shared form of fig17/fig19's fixed-rate arms,
    usable by both the per-request driver and the fluid integrator."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")

    def __call__(self, t: float) -> float:
        return self.rate

    def integral(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        return self.rate * (t1 - t0)


@dataclass(frozen=True)
class StepCurve:
    """Piecewise-constant rate: ``steps`` is ((start_time, rate), ...)
    sorted by start time; before the first step the rate is ``initial``.

    Models step load changes (region drains, product launches) that both
    traffic modes must see identically.
    """

    steps: Sequence[tuple]
    initial: float = 0.0

    def __post_init__(self) -> None:
        last = -math.inf
        for start, rate in self.steps:
            if start <= last:
                raise ValueError("step times must be strictly increasing")
            if rate < 0:
                raise ValueError("step rates must be >= 0")
            last = start
        if self.initial < 0:
            raise ValueError("initial rate must be >= 0")

    def __call__(self, t: float) -> float:
        rate = self.initial
        for start, step_rate in self.steps:
            if t < start:
                break
            rate = step_rate
        return rate

    def integral(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        area = 0.0
        cursor, rate = t0, self(t0)
        for start, step_rate in self.steps:
            if start <= cursor:
                continue
            if start >= t1:
                break
            area += rate * (start - cursor)
            cursor, rate = start, step_rate
        area += rate * (t1 - cursor)
        return area


def mean_rate(curve: Callable[[float], float], t0: float, t1: float,
              samples: int = 8) -> float:
    """Average rate of any curve over ``[t0, t1]``.

    Uses the curve's exact ``integral`` when it has one (the curves in
    this module all do); otherwise a composite-Simpson fallback, which is
    exact for polynomials up to cubic and deterministic for everything.
    This is the single quantity the fluid epoch integrator needs from a
    rate curve — both traffic modes therefore share curve definitions.
    """
    if t1 < t0:
        raise ValueError("need t0 <= t1")
    if t1 == t0:
        return max(0.0, curve(t0))
    integral = getattr(curve, "integral", None)
    if integral is not None:
        return max(0.0, integral(t0, t1) / (t1 - t0))
    if samples < 2:
        raise ValueError("samples must be >= 2")
    steps = samples + samples % 2  # Simpson needs an even interval count
    width = (t1 - t0) / steps
    total = curve(t0) + curve(t1)
    for i in range(1, steps):
        total += curve(t0 + i * width) * (4.0 if i % 2 else 2.0)
    return max(0.0, total * width / 3.0 / (t1 - t0))


def noisy(curve: Callable[[float], float], rng: random.Random,
          fraction: float = 0.05) -> Callable[[float], float]:
    """Multiplicative uniform noise on top of any rate curve."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("noise fraction must be in [0, 1)")

    def wrapped(t: float) -> float:
        return curve(t) * (1.0 + rng.uniform(-fraction, fraction))

    return wrapped


class ZipfKeySampler:
    """True bounded Zipf(s) key sampler.

    Rank ``i`` (0-based) carries probability ``(i + 1) ** -s`` normalized
    over ``support`` ranks — the standard bounded Zipf law.  Sampling is
    one ``rng.random()`` draw binary-searched against the precomputed
    cumulative harmonic sums, so it is O(log n) per key and fully
    deterministic under a seeded RNG.

    Ranks map to keys through an affine bijection
    ``key = (offset + rank * stride) % key_space`` (``stride`` must be
    coprime with ``key_space``).  ``stride=1`` keeps the hottest keys at
    the low end of the key space (adjacent, i.e. concentrated on few
    shards under range sharding); a larger stride scatters the hot ranks
    across the key space so many shards carry a hot key.  ``rotate()``
    and ``set_skew()`` mutate the mapping/CDF mid-run — the hooks the
    skew experiments use to shift the hot set while the clock runs.
    """

    __slots__ = ("key_space", "skew", "support", "stride", "offset", "_cdf",
                 "_total")

    def __init__(self, key_space: int, skew: float = 1.1,
                 support: Optional[int] = None, stride: int = 1,
                 offset: int = 0) -> None:
        if key_space < 1:
            raise ValueError("key_space must be >= 1")
        if skew < 0:
            raise ValueError("skew must be >= 0")
        support = key_space if support is None else min(support, key_space)
        if support < 1:
            raise ValueError("support must be >= 1")
        if stride < 1 or math.gcd(stride, key_space) != 1:
            raise ValueError("stride must be >= 1 and coprime with key_space")
        self.key_space = key_space
        self.skew = skew
        self.support = support
        self.stride = stride
        self.offset = offset % key_space
        self._rebuild()

    def _rebuild(self) -> None:
        cdf: List[float] = []
        total = 0.0
        s = self.skew
        for rank in range(1, self.support + 1):
            total += rank ** -s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def rotate(self, offset: int) -> None:
        """Move the hot set: rank ``i`` now maps to a new key window."""
        self.offset = offset % self.key_space

    def set_skew(self, skew: float) -> None:
        """Change the Zipf exponent mid-run (rebuilds the CDF)."""
        if skew < 0:
            raise ValueError("skew must be >= 0")
        self.skew = skew
        self._rebuild()

    def key_for_rank(self, rank: int) -> int:
        """The key carrying the ``rank``-th most traffic (0-based)."""
        if not 0 <= rank < self.support:
            raise ValueError("rank out of range")
        return (self.offset + rank * self.stride) % self.key_space

    def probability(self, rank: int) -> float:
        """Exact probability mass of the 0-based ``rank``."""
        if not 0 <= rank < self.support:
            raise ValueError("rank out of range")
        return (rank + 1) ** -self.skew / self._total

    def __call__(self, rng: random.Random) -> int:
        rank = bisect.bisect_left(self._cdf, rng.random() * self._total)
        if rank >= self.support:  # guard the u == total edge
            rank = self.support - 1
        return (self.offset + rank * self.stride) % self.key_space


def zipfian_key_sampler(key_space: int, skew: float = 1.1,
                        hot_keys: int = 1000,
                        stride: int = 1) -> ZipfKeySampler:
    """Bounded Zipf(s) key sampler over ``min(hot_keys, key_space)`` ranks.

    ``hot_keys`` bounds the sampler's support: only the top ``hot_keys``
    ranks receive traffic (keys beyond the support carry zero mass), and
    within the support rank ``i`` gets mass proportional to
    ``(i + 1) ** -skew``.  Pass ``hot_keys=key_space`` for a full-space
    Zipf.  Shard-level load skew in production comes from key popularity;
    this sampler gives experiments a realistic, properly rank-ordered
    hot/cold mix (the previous implementation was a flat two-tier
    hot/cold split whose ``skew`` knob saturated at a 0.9 hot fraction).
    """
    return ZipfKeySampler(key_space, skew=skew,
                          support=min(hot_keys, key_space), stride=stride)


def static_shard_loads(rng: random.Random, shard_ids: Sequence[str],
                       metrics: Sequence[str], skew: float = 20.0,
                       mean: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Per-shard static load vectors with max/min ratio ≈ ``skew``
    (Fig 21: "the largest shard's load is 20 times higher than that of
    the smallest shard").  Metrics are correlated but not identical."""
    from ..sim.rng import skewed_loads

    base = skewed_loads(rng, len(shard_ids), skew=skew, mean=mean)
    loads: Dict[str, Dict[str, float]] = {}
    for shard_id, value in zip(shard_ids, base):
        loads[shard_id] = {
            metric: value * rng.uniform(0.7, 1.3) for metric in metrics}
    return loads
