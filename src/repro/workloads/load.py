"""Load shapes: diurnal curves and skewed per-shard load assignment.

Figures 18 and 23 are driven by Facebook's real diurnal traffic ("the
client request rate ... follows a diurnal pattern", "the ever-changing
load driven by billions of Facebook product users' realtime activities").
:class:`DiurnalCurve` reproduces that shape: a day-period sinusoid with
optional noise, normalized so ``base`` is the trough and ``peak`` the
crest.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

DAY = 86_400.0


@dataclass(frozen=True)
class DiurnalCurve:
    """rate(t): trough-to-crest sinusoid with period one (simulated) day."""

    base: float
    peak: float
    period: float = DAY
    phase: float = 0.0  # seconds after t=0 when the curve crosses its mean

    def __post_init__(self) -> None:
        if self.base < 0 or self.peak < self.base:
            raise ValueError("need 0 <= base <= peak")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def __call__(self, t: float) -> float:
        mean = (self.base + self.peak) / 2.0
        amplitude = (self.peak - self.base) / 2.0
        return mean + amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period)


def noisy(curve: Callable[[float], float], rng: random.Random,
          fraction: float = 0.05) -> Callable[[float], float]:
    """Multiplicative uniform noise on top of any rate curve."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("noise fraction must be in [0, 1)")

    def wrapped(t: float) -> float:
        return curve(t) * (1.0 + rng.uniform(-fraction, fraction))

    return wrapped


def zipfian_key_sampler(key_space: int, skew: float = 1.1,
                        hot_keys: int = 1000) -> Callable[[random.Random], int]:
    """Key sampler with a Zipf-ish hot set: a fraction of traffic
    concentrates on ``hot_keys`` keys, the rest is uniform.

    Shard-level load skew in production comes from key popularity; this
    sampler gives experiments a realistic hot/cold shard mix.
    """
    if key_space < 1:
        raise ValueError("key_space must be >= 1")
    hot_keys = min(hot_keys, key_space)
    hot_fraction = min(0.9, 1.0 - 1.0 / skew) if skew > 1.0 else 0.0

    def sample(rng: random.Random) -> int:
        if hot_fraction and rng.random() < hot_fraction:
            return rng.randrange(hot_keys)
        return rng.randrange(key_space)

    return sample


def static_shard_loads(rng: random.Random, shard_ids: Sequence[str],
                       metrics: Sequence[str], skew: float = 20.0,
                       mean: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Per-shard static load vectors with max/min ratio ≈ ``skew``
    (Fig 21: "the largest shard's load is 20 times higher than that of
    the smallest shard").  Metrics are correlated but not identical."""
    from ..sim.rng import skewed_loads

    base = skewed_loads(rng, len(shard_ids), skew=skew, mean=mean)
    loads: Dict[str, Dict[str, float]] = {}
    for shard_id, value in zip(shard_ids, base):
        loads[shard_id] = {
            metric: value * rng.uniform(0.7, 1.3) for metric in metrics}
    return loads
