"""Load shapes: diurnal curves and skewed per-shard load assignment.

Figures 18 and 23 are driven by Facebook's real diurnal traffic ("the
client request rate ... follows a diurnal pattern", "the ever-changing
load driven by billions of Facebook product users' realtime activities").
:class:`DiurnalCurve` reproduces that shape: a day-period sinusoid with
optional noise, normalized so ``base`` is the trough and ``peak`` the
crest.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

DAY = 86_400.0


@dataclass(frozen=True)
class DiurnalCurve:
    """rate(t): trough-to-crest sinusoid with period one (simulated) day."""

    base: float
    peak: float
    period: float = DAY
    phase: float = 0.0  # seconds after t=0 when the curve crosses its mean

    def __post_init__(self) -> None:
        if self.base < 0 or self.peak < self.base:
            raise ValueError("need 0 <= base <= peak")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def __call__(self, t: float) -> float:
        mean = (self.base + self.peak) / 2.0
        amplitude = (self.peak - self.base) / 2.0
        return mean + amplitude * math.sin(
            2.0 * math.pi * (t - self.phase) / self.period)

    def integral(self, t0: float, t1: float) -> float:
        """Exact integral of the rate over ``[t0, t1]`` (requests)."""
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        mean = (self.base + self.peak) / 2.0
        amplitude = (self.peak - self.base) / 2.0
        omega = 2.0 * math.pi / self.period
        area = mean * (t1 - t0)
        area -= (amplitude / omega) * (math.cos(omega * (t1 - self.phase))
                                       - math.cos(omega * (t0 - self.phase)))
        return area


@dataclass(frozen=True)
class ConstantCurve:
    """rate(t) = rate.  The shared form of fig17/fig19's fixed-rate arms,
    usable by both the per-request driver and the fluid integrator."""

    rate: float

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be >= 0")

    def __call__(self, t: float) -> float:
        return self.rate

    def integral(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        return self.rate * (t1 - t0)


@dataclass(frozen=True)
class StepCurve:
    """Piecewise-constant rate: ``steps`` is ((start_time, rate), ...)
    sorted by start time; before the first step the rate is ``initial``.

    Models step load changes (region drains, product launches) that both
    traffic modes must see identically.
    """

    steps: Sequence[tuple]
    initial: float = 0.0

    def __post_init__(self) -> None:
        last = -math.inf
        for start, rate in self.steps:
            if start <= last:
                raise ValueError("step times must be strictly increasing")
            if rate < 0:
                raise ValueError("step rates must be >= 0")
            last = start
        if self.initial < 0:
            raise ValueError("initial rate must be >= 0")

    def __call__(self, t: float) -> float:
        rate = self.initial
        for start, step_rate in self.steps:
            if t < start:
                break
            rate = step_rate
        return rate

    def integral(self, t0: float, t1: float) -> float:
        if t1 < t0:
            raise ValueError("need t0 <= t1")
        area = 0.0
        cursor, rate = t0, self(t0)
        for start, step_rate in self.steps:
            if start <= cursor:
                continue
            if start >= t1:
                break
            area += rate * (start - cursor)
            cursor, rate = start, step_rate
        area += rate * (t1 - cursor)
        return area


def mean_rate(curve: Callable[[float], float], t0: float, t1: float,
              samples: int = 8) -> float:
    """Average rate of any curve over ``[t0, t1]``.

    Uses the curve's exact ``integral`` when it has one (the curves in
    this module all do); otherwise a composite-Simpson fallback, which is
    exact for polynomials up to cubic and deterministic for everything.
    This is the single quantity the fluid epoch integrator needs from a
    rate curve — both traffic modes therefore share curve definitions.
    """
    if t1 < t0:
        raise ValueError("need t0 <= t1")
    if t1 == t0:
        return max(0.0, curve(t0))
    integral = getattr(curve, "integral", None)
    if integral is not None:
        return max(0.0, integral(t0, t1) / (t1 - t0))
    if samples < 2:
        raise ValueError("samples must be >= 2")
    steps = samples + samples % 2  # Simpson needs an even interval count
    width = (t1 - t0) / steps
    total = curve(t0) + curve(t1)
    for i in range(1, steps):
        total += curve(t0 + i * width) * (4.0 if i % 2 else 2.0)
    return max(0.0, total * width / 3.0 / (t1 - t0))


def noisy(curve: Callable[[float], float], rng: random.Random,
          fraction: float = 0.05) -> Callable[[float], float]:
    """Multiplicative uniform noise on top of any rate curve."""
    if not 0.0 <= fraction < 1.0:
        raise ValueError("noise fraction must be in [0, 1)")

    def wrapped(t: float) -> float:
        return curve(t) * (1.0 + rng.uniform(-fraction, fraction))

    return wrapped


def zipfian_key_sampler(key_space: int, skew: float = 1.1,
                        hot_keys: int = 1000) -> Callable[[random.Random], int]:
    """Key sampler with a Zipf-ish hot set: a fraction of traffic
    concentrates on ``hot_keys`` keys, the rest is uniform.

    Shard-level load skew in production comes from key popularity; this
    sampler gives experiments a realistic hot/cold shard mix.
    """
    if key_space < 1:
        raise ValueError("key_space must be >= 1")
    hot_keys = min(hot_keys, key_space)
    hot_fraction = min(0.9, 1.0 - 1.0 / skew) if skew > 1.0 else 0.0

    def sample(rng: random.Random) -> int:
        if hot_fraction and rng.random() < hot_fraction:
            return rng.randrange(hot_keys)
        return rng.randrange(key_space)

    return sample


def static_shard_loads(rng: random.Random, shard_ids: Sequence[str],
                       metrics: Sequence[str], skew: float = 20.0,
                       mean: float = 1.0) -> Dict[str, Dict[str, float]]:
    """Per-shard static load vectors with max/min ratio ≈ ``skew``
    (Fig 21: "the largest shard's load is 20 times higher than that of
    the smallest shard").  Metrics are correlated but not identical."""
    from ..sim.rng import skewed_loads

    base = skewed_loads(rng, len(shard_ids), skew=skew, mean=mean)
    loads: Dict[str, Dict[str, float]] = {}
    for shard_id, value in zip(shard_ids, base):
        loads[shard_id] = {
            metric: value * rng.uniform(0.7, 1.3) for metric in metrics}
    return loads
