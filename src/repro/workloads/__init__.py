"""Workload and fleet generators used by experiments and benchmarks."""

from .fleet import (
    Breakdown,
    SyntheticApp,
    adoption_curve,
    deployment_breakdown,
    drain_breakdown,
    generate_fleet,
    lb_policy_breakdown,
    replication_breakdown,
    scale_scatter,
    scheme_breakdown,
    storage_breakdown,
)
from .load import (
    DAY,
    DiurnalCurve,
    noisy,
    static_shard_loads,
    zipfian_key_sampler,
)
from .snapshots import (
    PAPER_SCALES,
    ZIPPYDB_METRICS,
    SnapshotScale,
    attach_zippydb_goals,
    scaled,
    zippydb_snapshot,
)

__all__ = [
    "Breakdown",
    "SyntheticApp",
    "adoption_curve",
    "deployment_breakdown",
    "drain_breakdown",
    "generate_fleet",
    "lb_policy_breakdown",
    "replication_breakdown",
    "scale_scatter",
    "scheme_breakdown",
    "storage_breakdown",
    "DAY",
    "DiurnalCurve",
    "noisy",
    "static_shard_loads",
    "zipfian_key_sampler",
    "PAPER_SCALES",
    "ZIPPYDB_METRICS",
    "SnapshotScale",
    "attach_zippydb_goals",
    "scaled",
    "zippydb_snapshot",
]
