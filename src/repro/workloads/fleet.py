"""Synthetic fleet demographics (Figures 2, 4–9, 15, 16).

The paper's §2.2 demographics come from a months-long survey of every
sharded application at Facebook.  We encode the published marginal
distributions and sample a synthetic population of applications from
them; the demographics experiments then *re-measure* the marginals from
the sample — validating the generator that the other experiments use for
fleet composition.

All constants below are the paper's published percentages.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.spec import (
    DeploymentMode,
    DrainPolicy,
    LoadBalancePolicy,
    ReplicationStrategy,
)

# Figure 4 — sharding schemes, fractions by application count.
SHARDING_SCHEME_BY_APP = {
    "sm": 0.54,
    "static": 0.35,
    "consistent_hashing": 0.10,
    "custom": 0.01,
}
# Figure 4 — fractions by server count (drives per-scheme size scaling).
SHARDING_SCHEME_BY_SERVER = {
    "sm": 0.34,
    "static": 0.30,
    "consistent_hashing": 0.09,
    "custom": 0.27,
}

# Figure 5 — SM applications: deployment mode by application count.
GEO_DISTRIBUTED_BY_APP = 0.67
GEO_DISTRIBUTED_BY_SERVER = 0.42

# Figure 6 — replication strategy by application count / server count.
REPLICATION_BY_APP = {
    ReplicationStrategy.PRIMARY_ONLY: 0.68,
    ReplicationStrategy.PRIMARY_SECONDARY: 0.24,
    ReplicationStrategy.SECONDARY_ONLY: 0.08,
}
REPLICATION_BY_SERVER = {
    ReplicationStrategy.PRIMARY_ONLY: 0.25,
    ReplicationStrategy.PRIMARY_SECONDARY: 0.41,
    ReplicationStrategy.SECONDARY_ONLY: 0.34,
}

# Figure 7 — load-balancing policy by application count / server count.
LB_POLICY_BY_APP = {
    LoadBalancePolicy.SHARD_COUNT: 0.55,
    LoadBalancePolicy.SINGLE_SYNTHETIC: 0.10,
    LoadBalancePolicy.SINGLE_RESOURCE: 0.10,
    LoadBalancePolicy.MULTI_METRIC: 0.25,
}
LB_POLICY_BY_SERVER = {
    LoadBalancePolicy.SHARD_COUNT: 0.19,
    LoadBalancePolicy.SINGLE_SYNTHETIC: 0.14,
    LoadBalancePolicy.SINGLE_RESOURCE: 0.02,
    LoadBalancePolicy.MULTI_METRIC: 0.65,
}

# Figure 8 — drain policies.
DRAIN_PRIMARIES_BY_APP = 0.94
DRAIN_SECONDARIES_BY_APP = 0.22

# Figure 9 — storage vs non-storage machines.
STORAGE_BY_APP = 0.18
STORAGE_BY_SERVER = 0.38

# Figure 15 — application-scale extremes.
MAX_SERVERS_PER_APP = 19_000
MAX_SHARDS_PER_APP = 2_600_000
LARGE_APP_FRACTION = 0.14  # deployments with >= 1000 servers


@dataclass(frozen=True)
class SyntheticApp:
    """One application in the synthetic population."""

    name: str
    scheme: str                        # sm / static / consistent_hashing / custom
    servers: int
    shards: int
    mode: DeploymentMode
    replication: ReplicationStrategy
    lb_policy: LoadBalancePolicy
    drain_policy: DrainPolicy
    uses_storage: bool

    @property
    def is_sm(self) -> bool:
        return self.scheme == "sm"


def _weighted(rng: random.Random, table: Dict) -> object:
    choices = list(table)
    weights = [table[c] for c in choices]
    return rng.choices(choices, weights=weights, k=1)[0]


def _server_count(rng: random.Random, scheme: str) -> int:
    """Log-normal sizes tuned so ~14% of deployments use >= 1000 servers
    and the maximum stays near the paper's 19K.  Custom-sharding apps are
    few but huge (1% of apps, 27% of servers)."""
    if scheme == "custom":
        size = int(rng.lognormvariate(math.log(60_000), 0.8))
        return max(5_000, min(size, 200_000))
    sigma = 2.0
    mu = math.log(160)
    size = int(rng.lognormvariate(mu, sigma))
    return max(1, min(size, MAX_SERVERS_PER_APP))


def _shard_count(rng: random.Random, servers: int) -> int:
    """Shards per server ratio is log-normal around ~60 (Fig 15's biggest
    app has ≈137 shards/server; mini-SMs run ≈26)."""
    ratio = rng.lognormvariate(math.log(40), 1.0)
    ratio = max(1.0, min(ratio, 500.0))
    return max(1, min(int(servers * ratio), MAX_SHARDS_PER_APP))


# Size-conditioned attribute sampling.  Big apps (>= 1000 servers, ~14%
# of deployments) are far more likely to use storage and multi-metric LB;
# the conditional probabilities below are chosen so the *marginal* stays
# at the published by-app number while the by-server share skews upward:
#     P(attr) = P(attr|big) P(big) + P(attr|small) P(small).
_BIG_APP_FRACTION = 0.14
_STORAGE_GIVEN_BIG = 0.50
_STORAGE_GIVEN_SMALL = (STORAGE_BY_APP
                        - _STORAGE_GIVEN_BIG * _BIG_APP_FRACTION) / (
                            1.0 - _BIG_APP_FRACTION)
_MULTI_GIVEN_BIG = 0.70
_MULTI_GIVEN_SMALL = (LB_POLICY_BY_APP[LoadBalancePolicy.MULTI_METRIC]
                      - _MULTI_GIVEN_BIG * _BIG_APP_FRACTION) / (
                          1.0 - _BIG_APP_FRACTION)


def _storage_usage(rng: random.Random, servers: int) -> bool:
    probability = (_STORAGE_GIVEN_BIG if servers >= 1000
                   else _STORAGE_GIVEN_SMALL)
    return rng.random() < probability


def _lb_policy(rng: random.Random, servers: int) -> LoadBalancePolicy:
    multi_probability = (_MULTI_GIVEN_BIG if servers >= 1000
                         else _MULTI_GIVEN_SMALL)
    if rng.random() < multi_probability:
        return LoadBalancePolicy.MULTI_METRIC
    others = {policy: weight for policy, weight in LB_POLICY_BY_APP.items()
              if policy is not LoadBalancePolicy.MULTI_METRIC}
    return _weighted(rng, others)


def generate_fleet(app_count: int = 500,
                   seed: int = 0) -> List[SyntheticApp]:
    """Sample a population of sharded applications."""
    if app_count < 1:
        raise ValueError("app_count must be >= 1")
    rng = random.Random(seed)
    apps: List[SyntheticApp] = []
    for index in range(app_count):
        scheme = _weighted(rng, SHARDING_SCHEME_BY_APP)
        servers = _server_count(rng, scheme)
        shards = _shard_count(rng, servers)
        geo = rng.random() < GEO_DISTRIBUTED_BY_APP
        # Geo-distributed deployments skew smaller by server count
        # (GEO_BY_SERVER 42% < GEO_BY_APP 67%): damp size for geo apps.
        if geo and servers > 2000 and rng.random() < 0.5:
            servers = servers // 4
            shards = max(1, shards // 4)
        replication = _weighted(rng, REPLICATION_BY_APP)
        lb_policy = _lb_policy(rng, servers)
        drain_policy = DrainPolicy(
            drain_primaries=rng.random() < DRAIN_PRIMARIES_BY_APP,
            drain_secondaries=rng.random() < DRAIN_SECONDARIES_BY_APP,
        )
        apps.append(SyntheticApp(
            name=f"app{index:04d}",
            scheme=scheme,
            servers=servers,
            shards=shards,
            mode=(DeploymentMode.GEO_DISTRIBUTED if geo
                  else DeploymentMode.REGIONAL),
            replication=replication,
            lb_policy=lb_policy,
            drain_policy=drain_policy,
            uses_storage=_storage_usage(rng, servers),
        ))
    return apps


@dataclass
class Breakdown:
    """A Fig 4–9 style two-way breakdown."""

    by_app: Dict[str, float]
    by_server: Dict[str, float]


def _two_way(apps: Sequence[SyntheticApp], key_fn) -> Breakdown:
    app_counts: Dict[str, int] = {}
    server_counts: Dict[str, int] = {}
    total_servers = 0
    for app in apps:
        key = key_fn(app)
        app_counts[key] = app_counts.get(key, 0) + 1
        server_counts[key] = server_counts.get(key, 0) + app.servers
        total_servers += app.servers
    return Breakdown(
        by_app={k: v / len(apps) for k, v in app_counts.items()},
        by_server={k: v / total_servers for k, v in server_counts.items()},
    )


def scheme_breakdown(apps: Sequence[SyntheticApp]) -> Breakdown:
    """Figure 4."""
    return _two_way(apps, lambda a: a.scheme)


def deployment_breakdown(apps: Sequence[SyntheticApp]) -> Breakdown:
    """Figure 5 (SM applications only)."""
    return _two_way([a for a in apps if a.is_sm], lambda a: a.mode.value)


def replication_breakdown(apps: Sequence[SyntheticApp]) -> Breakdown:
    """Figure 6 (SM applications only)."""
    return _two_way([a for a in apps if a.is_sm],
                    lambda a: a.replication.value)


def lb_policy_breakdown(apps: Sequence[SyntheticApp]) -> Breakdown:
    """Figure 7 (SM applications only)."""
    return _two_way([a for a in apps if a.is_sm], lambda a: a.lb_policy.value)


def drain_breakdown(apps: Sequence[SyntheticApp]) -> Dict[str, Breakdown]:
    """Figure 8 (SM applications only): drain usage for each role."""
    sm_apps = [a for a in apps if a.is_sm]
    return {
        "primaries": _two_way(
            sm_apps,
            lambda a: "drain" if a.drain_policy.drain_primaries else "no_drain"),
        "secondaries": _two_way(
            sm_apps,
            lambda a: "drain" if a.drain_policy.drain_secondaries else "no_drain"),
    }


def storage_breakdown(apps: Sequence[SyntheticApp]) -> Breakdown:
    """Figure 9 (SM applications only)."""
    return _two_way([a for a in apps if a.is_sm],
                    lambda a: "storage" if a.uses_storage else "non_storage")


def scale_scatter(apps: Sequence[SyntheticApp]) -> List[Tuple[int, int]]:
    """Figure 15: (servers, shards) per SM application deployment."""
    return [(a.servers, a.shards) for a in apps if a.is_sm]


def adoption_curve(years: Sequence[int], final_machines: float = 1_100_000,
                   midpoint_year: float = 2018.0,
                   steepness: float = 0.75) -> List[Tuple[int, float]]:
    """Figure 2: logistic growth of machines running SM applications,
    2012 → 2021 reaching ~1.1M machines."""
    curve = []
    for year in years:
        machines = final_machines / (1.0 + math.exp(
            -steepness * (year - midpoint_year)))
        curve.append((year, machines))
    return curve
