"""Journal exporters: Chrome-trace/Perfetto JSON and compact JSONL.

The Chrome trace format (loadable at https://ui.perfetto.dev or
``chrome://tracing``) renders each journal track as one named thread:
spans become async ``b``/``e`` event pairs keyed by span id, instants
become ``i`` events, counter samples become ``C`` events, and instants
carrying a ``wall_ms`` arg (solver stages) become complete ``X`` events
whose duration is the measured wall-clock — so simulated-time tracks and
wall-clock solver stages live in one timeline.

Simulated seconds map to trace microseconds (1 s → 1,000,000 µs).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from .tracer import (
    KIND_BEGIN,
    KIND_COUNTER,
    KIND_END,
    KIND_INSTANT,
    Journal,
    TraceRecord,
)

__all__ = ["chrome_trace_events", "write_chrome_trace", "write_jsonl",
           "read_jsonl"]

_PID = 1
_US_PER_SIM_SECOND = 1e6


def chrome_trace_events(journal: Journal) -> List[Dict[str, Any]]:
    """The ``traceEvents`` list for a journal."""
    tids = {track: tid for tid, track in enumerate(journal.tracks(), start=1)}
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": "repro-sim"}},
    ]
    for track, tid in sorted(tids.items(), key=lambda item: item[1]):
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_sort_index", "args": {"sort_index": tid}})
    for record in journal:
        tid = tids[record.track]
        ts = record.time * _US_PER_SIM_SECOND
        kind = record.kind
        if kind == KIND_BEGIN:
            events.append({"ph": "b", "cat": record.track,
                           "name": record.name, "id": str(record.span),
                           "pid": _PID, "tid": tid, "ts": ts,
                           "args": record.args or {}})
        elif kind == KIND_END:
            events.append({"ph": "e", "cat": record.track,
                           "name": record.name, "id": str(record.span),
                           "pid": _PID, "tid": tid, "ts": ts,
                           "args": record.args or {}})
        elif kind == KIND_INSTANT:
            args = record.args or {}
            wall_ms = args.get("wall_ms")
            if wall_ms is not None:
                # Wall-clock-measured stage: render as a complete slice
                # whose duration is the measurement.
                events.append({"ph": "X", "cat": record.track,
                               "name": record.name, "pid": _PID, "tid": tid,
                               "ts": ts, "dur": wall_ms * 1e3, "args": args})
            else:
                events.append({"ph": "i", "cat": record.track,
                               "name": record.name, "pid": _PID, "tid": tid,
                               "ts": ts, "s": "t", "args": args})
        elif kind == KIND_COUNTER:
            value = (record.args or {}).get("value", 0)
            events.append({"ph": "C", "name": f"{record.track}.{record.name}",
                           "pid": _PID, "tid": tid, "ts": ts,
                           "args": {record.name: value}})
    return events


def write_chrome_trace(journal: Journal, path: str) -> None:
    """Write a Perfetto-loadable Chrome trace JSON file."""
    document = {"traceEvents": chrome_trace_events(journal),
                "displayTimeUnit": "ms",
                "otherData": {"records": len(journal),
                              "dropped": journal.dropped,
                              "digest": journal.digest()}}
    with open(path, "w") as handle:
        json.dump(document, handle)
        handle.write("\n")


def write_jsonl(journal: Journal, path: str) -> None:
    """Compact journal dump: one JSON record per line."""
    with open(path, "w") as handle:
        for record in journal:
            handle.write(json.dumps(record.as_dict(), sort_keys=True))
            handle.write("\n")


def read_jsonl(path: str) -> Journal:
    """Rebuild a journal from a JSONL dump (for offline checking)."""
    journal = Journal()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            journal.append(TraceRecord(
                data["seq"], data["kind"], data["track"], data["name"],
                data["t"], data.get("span", 0), data.get("args")))
    return journal
