"""The metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` per :class:`~repro.obs.Observability`
context absorbs the ad-hoc counters scattered across the codebase
(``Network.rpcs_sent``/``rpcs_failed``, engine event counts, router
retries, orchestrator publish/move counts) behind a single named
namespace, without touching the hot paths that maintain them:

* components keep bumping their plain ``int`` attributes (unconditional
  integer adds — the fastest possible "metric");
* when observability is enabled, the wiring layer registers *callback
  gauges* that read those attributes lazily at snapshot time.

Counters and histograms are for code that is only reached when
observability is on (instrumentation blocks guarded by
``tracer.enabled``), so none of these classes need a disabled fast path
of their own.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (unit chosen by the caller —
#: the built-in RPC latency histogram feeds milliseconds).
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A named read-through value: ``fn()`` is evaluated on snapshot.

    Callback gauges are how the registry absorbs pre-existing raw
    counters without adding a registry call to any hot path.
    """

    __slots__ = ("name", "fn")
    kind = "gauge"

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def snapshot(self) -> float:
        return self.fn()


class Histogram:
    """Fixed-bound bucketed distribution (upper-bound buckets + overflow)."""

    __slots__ = ("name", "bounds", "counts", "total", "sum")
    kind = "histogram"

    def __init__(self, name: str,
                 bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding
        the q-th observation (the last finite bound for overflow)."""
        if not self.total:
            return 0.0
        rank = q * self.total
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]

    def snapshot(self) -> Dict[str, Any]:
        return {"total": self.total, "sum": self.sum, "mean": self.mean,
                "buckets": {repr(bound): count for bound, count
                            in zip(self.bounds, self.counts)},
                "overflow": self.counts[-1]}


class MetricsRegistry:
    """Name → metric.  Re-registering a name returns/replaces the
    existing metric of the same kind (so failover re-wiring is safe) and
    raises on a kind clash."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _slot(self, name: str, kind: str):
        existing = self._metrics.get(name)
        if existing is not None and existing.kind != kind:
            raise ValueError(f"metric {name!r} already registered as "
                             f"{existing.kind}, not {kind}")
        return existing

    def counter(self, name: str) -> Counter:
        existing = self._slot(name, "counter")
        if existing is None:
            existing = Counter(name)
            self._metrics[name] = existing
        return existing

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        existing = self._slot(name, "gauge")
        if existing is None:
            existing = Gauge(name, fn)
            self._metrics[name] = existing
        else:
            existing.fn = fn  # latest registration wins (e.g. failover)
        return existing

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BOUNDS) -> Histogram:
        existing = self._slot(name, "histogram")
        if existing is None:
            existing = Histogram(name, bounds)
            self._metrics[name] = existing
        return existing

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-friendly {name: value} across every registered metric."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}
