"""Deterministic sim-time tracing: spans, instants, and the ring journal.

The tracer is the write side of the observability subsystem.  It records
slotted :class:`TraceRecord` objects into a bounded ring-buffer
:class:`Journal`; records carry *simulated* time only and every id (span
ids, sequence numbers) comes from per-tracer counters — never from wall
clocks or ``id()`` — so two seeded runs produce byte-identical journals
(see DESIGN.md, "Observability").

Wall-clock measurements (e.g. solver stage timings) may ride along in
record ``args``, but only under keys prefixed ``wall``: the journal's
:meth:`Journal.digest` skips those keys, keeping the digest a pure
function of simulation behaviour.

Disabled tracing is the common case and must cost ~nothing: hot paths
hold a tracer reference and branch on the cached class attribute
``tracer.enabled`` (``False`` on the module-level :data:`NO_TRACER`
singleton), paying one attribute load + jump per potential record.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Journal", "Tracer", "NullTracer", "NO_TRACER"]

#: Record kinds: span begin / span end / instant / counter sample.
KIND_BEGIN = "B"
KIND_END = "E"
KIND_INSTANT = "I"
KIND_COUNTER = "C"


class TraceRecord:
    """One journal entry (slotted; ~100 bytes + args)."""

    __slots__ = ("seq", "kind", "track", "name", "time", "span", "args")

    def __init__(self, seq: int, kind: str, track: str, name: str,
                 time: float, span: int,
                 args: Optional[Dict[str, Any]]) -> None:
        self.seq = seq
        self.kind = kind
        self.track = track
        self.name = name
        self.time = time
        self.span = span      # 0 for records not tied to a span
        self.args = args      # None or a plain dict of JSON-able values

    def canonical(self) -> str:
        """Deterministic one-line form, excluding ``wall*`` args.

        Used by :meth:`Journal.digest`: two seeded runs must produce the
        same lines even though their wall-clock measurements differ.
        """
        if self.args:
            args = ",".join(f"{k}={self.args[k]!r}"
                            for k in sorted(self.args)
                            if not k.startswith("wall"))
        else:
            args = ""
        return (f"{self.seq}|{self.kind}|{self.track}|{self.name}|"
                f"{self.time!r}|{self.span}|{args}")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (the JSONL dump schema)."""
        record: Dict[str, Any] = {"seq": self.seq, "kind": self.kind,
                                  "track": self.track, "name": self.name,
                                  "t": self.time}
        if self.span:
            record["span"] = self.span
        if self.args:
            record["args"] = self.args
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecord {self.canonical()}>"


class Journal:
    """Bounded ring buffer of trace records.

    Appends are O(1); once ``capacity`` is reached the oldest records are
    evicted (``dropped`` counts how many).  Bounded by design: a traced
    figure run keeps the most recent window instead of growing without
    limit, and the :class:`~repro.obs.checker.TraceChecker` tolerates a
    truncated prefix (unmatched span ends are ignored).
    """

    def __init__(self, capacity: int = 1 << 20) -> None:
        if capacity <= 0:
            raise ValueError("journal capacity must be positive")
        self.capacity = capacity
        self._records: deque = deque(maxlen=capacity)
        self.appended = 0

    def append(self, record: TraceRecord) -> None:
        self._records.append(record)
        self.appended += 1

    @property
    def dropped(self) -> int:
        """Records evicted by the ring bound."""
        return self.appended - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.appended = 0

    def tracks(self) -> List[str]:
        """Sorted distinct track names present in the journal."""
        return sorted({record.track for record in self._records})

    def digest(self) -> str:
        """SHA-256 over the canonical record lines (``wall*`` args
        excluded) — the seed-parity fingerprint for enabled tracing."""
        hasher = hashlib.sha256()
        for record in self._records:
            hasher.update(record.canonical().encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def coverage_keys(self, violations=()):
        """The behavioural coverage fingerprint of this journal (see
        :func:`repro.obs.coverage.coverage_keys`)."""
        from .coverage import coverage_keys
        return coverage_keys(self, violations)


class Tracer:
    """Records spans / instants / counters into a :class:`Journal`.

    Span ids and sequence numbers are small monotonic ints allocated per
    tracer; the clock is bound to a simulation engine with
    :meth:`bind_clock` (records made before binding stamp ``t=0.0``).
    ``registry`` points at the owning
    :class:`~repro.obs.metrics.MetricsRegistry` so instrumented components
    holding only the tracer can also register gauges.
    """

    enabled = True  # class attribute: one load in hot-path guards

    def __init__(self, journal: Optional[Journal] = None) -> None:
        self.journal = journal if journal is not None else Journal()
        self.registry = None  # set by Observability
        self._engine = None
        self._next_span = 1
        self._next_seq = 0

    def bind_clock(self, engine) -> None:
        """Stamp subsequent records with ``engine.now``."""
        self._engine = engine

    def now(self) -> float:
        engine = self._engine
        return engine.now if engine is not None else 0.0

    # -- recording -----------------------------------------------------------

    def _append(self, kind: str, track: str, name: str,
                time: Optional[float], span: int,
                args: Optional[Dict[str, Any]]) -> None:
        if time is None:
            engine = self._engine
            time = engine.now if engine is not None else 0.0
        seq = self._next_seq
        self._next_seq = seq + 1
        self.journal.append(TraceRecord(seq, kind, track, name, time,
                                        span, args))

    def begin(self, track: str, name: str, time: Optional[float] = None,
              args: Optional[Dict[str, Any]] = None) -> int:
        """Open a span; returns its id (pass it to :meth:`end`)."""
        span = self._next_span
        self._next_span = span + 1
        self._append(KIND_BEGIN, track, name, time, span, args)
        return span

    def end(self, span: int, time: Optional[float] = None,
            args: Optional[Dict[str, Any]] = None,
            track: str = "", name: str = "") -> None:
        """Close a span.  ``track``/``name`` should repeat the begin's so
        exporters can label the end event without an index."""
        self._append(KIND_END, track, name, time, span, args)

    def instant(self, track: str, name: str, time: Optional[float] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        self._append(KIND_INSTANT, track, name, time, 0, args)

    def counter(self, track: str, name: str, value: float,
                time: Optional[float] = None) -> None:
        """One sample of a time-varying quantity (a counter track)."""
        self._append(KIND_COUNTER, track, name, time, 0, {"value": value})


class NullTracer(Tracer):
    """The disabled tracer: every recording method is a no-op.

    Instrumented hot paths guard with ``if tracer.enabled:`` and never
    reach these methods; the overrides exist so cold paths may call them
    unguarded without branching.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(Journal(capacity=1))

    def bind_clock(self, engine) -> None:
        return None

    def begin(self, track: str, name: str, time: Optional[float] = None,
              args: Optional[Dict[str, Any]] = None) -> int:
        return 0

    def end(self, span: int, time: Optional[float] = None,
            args: Optional[Dict[str, Any]] = None,
            track: str = "", name: str = "") -> None:
        return None

    def instant(self, track: str, name: str, time: Optional[float] = None,
                args: Optional[Dict[str, Any]] = None) -> None:
        return None

    def counter(self, track: str, name: str, value: float,
                time: Optional[float] = None) -> None:
        return None


#: Module-level no-op singleton: the default ``tracer`` everywhere.
NO_TRACER = NullTracer()
