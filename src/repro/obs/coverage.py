"""Coverage fingerprints: which behaviours a journal actually exercised.

The chaos fuzzer (:mod:`repro.chaos.fuzz`) needs a cheap, deterministic
answer to "did this scenario do anything *new*?".  :func:`coverage_keys`
reduces a :class:`~repro.obs.tracer.Journal` (plus the TraceChecker's
violation list) to a frozen set of short strings — the **coverage
fingerprint** — chosen so that two scenarios exploring the same
protocol paths collide and a scenario reaching a new path contributes
at least one new key:

* ``chaos:fault:<kind>`` / ``chaos:recover:<kind>`` /
  ``chaos:planned:<kind>`` — which fault vocabulary entries fired (and
  were reverted); ``chaos:probe:<check>:<ok|fail>`` for probes and any
  other chaos instant (e.g. ``chaos:crash_deferred``) by name;
* ``shards:<op>:<role>:<state>`` — :class:`AssignmentTable` transition
  kinds (``add``/``set_state`` keep role+state; ``drop``/``reset``
  collapse to the op);
* ``migration:<kind>``, ``migration:<kind>:<outcome>`` and
  ``migration:<kind>:phase:<phase>`` — which migration protocols ran,
  how they ended, and which protocol phases were observed;
* ``orchestrator:<name>`` — control-plane paths (``failover``,
  ``emergency``, ``drain``, ...);
* ``taskcontrol:<name>`` / ``router:<name>`` / ``fluid:<name>`` —
  TaskController reviews and notices, router misroutes/failures,
  fluid overload onsets;
* ``net:<method>`` and ``net:<method>:<ok|fail>`` — which RPC methods
  ran and whether any of them failed;
* ``violation:<invariant>`` — the violation *signal*, folded into the
  same namespace so "violates a new invariant" is just novel coverage.

The keys are pure functions of the journal's canonical content (no
wall-clock, no ids), so the fingerprint inherits the journal's
determinism contract: ``(seed, spec) -> digest`` implies
``(seed, spec) -> coverage_keys``.

High-volume bookkeeping tracks (``engine`` sampling instants) are
deliberately excluded — they appear in every run and would only dilute
the fingerprint.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, Union

from .checker import Violation
from .tracer import KIND_BEGIN, KIND_END, KIND_INSTANT, Journal

__all__ = ["coverage_keys", "coverage_summary", "violation_invariants"]


def violation_invariants(
        violations: Iterable[Union[Violation, Dict[str, Any]]]
) -> FrozenSet[str]:
    """The distinct invariant names in a violation list (objects or the
    ``as_dict`` form) — the shrinker's "same bug?" signature."""
    names = set()
    for violation in violations:
        if isinstance(violation, Violation):
            names.add(violation.invariant)
        else:
            names.add(violation.get("invariant", "?"))
    return frozenset(names)


def coverage_keys(
        journal: Journal,
        violations: Iterable[Union[Violation, Dict[str, Any]]] = (),
) -> FrozenSet[str]:
    """Extract the coverage fingerprint from a journal + violation list."""
    keys = set()
    span_names: Dict[int, str] = {}  # migration/net span -> begin name
    for record in journal:
        track = record.track
        if track == "chaos":
            if record.kind != KIND_INSTANT:
                continue  # the scenario wrapper span carries no signal
            args = record.args or {}
            name = record.name
            if name in ("fault", "recover", "planned"):
                keys.add(f"chaos:{name}:{args.get('kind', '?')}")
            elif name == "probe":
                outcome = "ok" if args.get("ok") else "fail"
                keys.add(f"chaos:probe:{args.get('check', '?')}:{outcome}")
            else:
                keys.add(f"chaos:{name}")
        elif track == "shards":
            args = record.args or {}
            op = args.get("op", "?")
            if op in ("add", "set_state"):
                keys.add(f"shards:{op}:{args.get('role', '?')}"
                         f":{args.get('state', '?')}")
            else:
                keys.add(f"shards:{op}")
        elif track == "migration":
            if record.kind == KIND_BEGIN:
                span_names[record.span] = record.name
                keys.add(f"migration:{record.name}")
            elif record.kind == KIND_INSTANT and record.name == "phase":
                args = record.args or {}
                kind = span_names.get(args.get("span", 0), "?")
                keys.add(f"migration:{kind}:phase:{args.get('phase', '?')}")
            elif record.kind == KIND_END:
                kind = span_names.pop(record.span, None)
                if kind is not None:
                    outcome = (record.args or {}).get("outcome", "?")
                    keys.add(f"migration:{kind}:{outcome}")
        elif track == "orchestrator":
            if record.kind in (KIND_BEGIN, KIND_INSTANT):
                keys.add(f"orchestrator:{record.name}")
        elif track in ("taskcontrol", "router", "fluid"):
            if record.kind == KIND_INSTANT:
                keys.add(f"{track}:{record.name}")
        elif track == "net":
            if record.kind == KIND_BEGIN:
                span_names[record.span] = record.name
                keys.add(f"net:{record.name}")
            elif record.kind == KIND_END:
                method = span_names.pop(record.span, None)
                ok = (record.args or {}).get("ok")
                if method is not None and ok is not None:
                    keys.add(f"net:{method}:{'ok' if ok else 'fail'}")
    for invariant in violation_invariants(violations):
        keys.add(f"violation:{invariant}")
    return frozenset(keys)


def coverage_summary(keys: Iterable[str]) -> str:
    """One-line human summary: total plus per-namespace key counts."""
    keys = list(keys)
    groups = Counter(key.split(":", 1)[0] for key in keys)
    inner = " ".join(f"{group}={count}"
                     for group, count in sorted(groups.items()))
    return f"{len(keys)} keys ({inner})" if keys else "0 keys"
