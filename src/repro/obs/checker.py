"""Trace-driven invariant checking: replay the journal, assert the protocol.

The :class:`TraceChecker` turns the observability journal into an oracle
for cross-layer invariants that no single unit test sees end to end:

* **single completion** — no span ends twice; in particular an RPC never
  both delivers and fails (the class of bug the ``rpcs_failed``
  double-count fix addressed);
* **primary uniqueness** — replaying the ``shards`` transition records,
  a shard never has two READY primaries at any point in time;
* **migration protocol** — every migration span that ends with
  ``outcome == "ok"`` contains its protocol's full phase sequence in
  order (§4.3's prepare → forward → handoff → publish → drop_old for the
  graceful path); a "torn" migration that claims success without the
  complete handshake is flagged.

:meth:`TraceChecker.check_shard_map` additionally cross-checks a final
published :class:`~repro.core.shard_map.ShardMap` against the journal:
every routable address must be explained by a READY transition record —
the regression guard for paths (MiniSM partitions, emergency placement)
that once bypassed the orchestrator's bookkeeping.

The checker tolerates ring-buffer truncation: span ends whose begins were
evicted, and spans still open when the run stopped, are not violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .tracer import KIND_BEGIN, KIND_END, KIND_INSTANT, Journal

__all__ = ["Violation", "TraceChecker", "REQUIRED_PHASES"]

#: Per migration kind, the in-order phase sequence an ``ok`` span must show.
REQUIRED_PHASES: Dict[str, Tuple[str, ...]] = {
    "graceful": ("prepare", "forward", "handoff", "publish", "drop_old"),
    "abrupt": ("drop_old", "handoff"),
    "secondary": ("add_new", "drop_old"),
}


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to a journal sequence number."""

    invariant: str
    message: str
    seq: int

    def __str__(self) -> str:
        return f"[{self.invariant} @seq={self.seq}] {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {"invariant": self.invariant, "message": self.message,
                "seq": self.seq}


def _is_subsequence(needle: Tuple[str, ...], haystack: List[str]) -> bool:
    it = iter(haystack)
    return all(item in it for item in needle)


class TraceChecker:
    """Replays a :class:`~repro.obs.tracer.Journal` against the invariants."""

    def __init__(self, journal: Journal) -> None:
        self.journal = journal

    # -- entry points --------------------------------------------------------

    def check(self) -> List[Violation]:
        """Run the full journal invariant set; [] means clean."""
        violations: List[Violation] = []
        violations.extend(self._check_single_completion())
        violations.extend(self._check_primary_uniqueness())
        violations.extend(self._check_migration_protocol())
        return violations

    def assert_clean(self) -> None:
        violations = self.check()
        if violations:
            raise AssertionError(
                "trace invariants violated:\n"
                + "\n".join(f"  {v}" for v in violations))

    # -- invariant 1: spans settle exactly once ------------------------------

    def _check_single_completion(self) -> List[Violation]:
        violations: List[Violation] = []
        ended: Dict[int, Any] = {}  # span -> first end record
        for record in self.journal:
            if record.kind != KIND_END:
                continue
            first = ended.get(record.span)
            if first is None:
                ended[record.span] = record
                continue
            detail = ""
            if record.track == "net" or first.track == "net":
                first_ok = (first.args or {}).get("ok")
                this_ok = (record.args or {}).get("ok")
                detail = (f" (rpc completed as ok={first_ok} "
                          f"then again as ok={this_ok})")
            violations.append(Violation(
                "single-completion",
                f"span {record.span} ({first.track}/{first.name}) "
                f"ended more than once{detail}",
                record.seq))
        return violations

    # -- invariant 2: one READY primary per shard ----------------------------

    def _check_primary_uniqueness(self) -> List[Violation]:
        violations: List[Violation] = []
        # (app, shard) -> {replica_id: (role, state, address)}
        shards: Dict[Tuple[str, str], Dict[str, Tuple[str, str, str]]] = {}
        flagged: set = set()
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "shards":
                continue
            args = record.args or {}
            key = (args.get("app", ""), args.get("shard", ""))
            replicas = shards.setdefault(key, {})
            replica_id = args.get("replica", "")
            if args.get("op") == "drop":
                replicas.pop(replica_id, None)
                continue
            replicas[replica_id] = (args.get("role", ""),
                                    args.get("state", ""),
                                    args.get("address", ""))
            primaries = [a for (r, s, a) in replicas.values()
                         if r == "primary" and s == "ready"]
            if len(primaries) > 1 and key not in flagged:
                flagged.add(key)
                violations.append(Violation(
                    "primary-uniqueness",
                    f"shard {key[1]} of {key[0]} has {len(primaries)} READY "
                    f"primaries at t={record.time!r}: {sorted(primaries)}",
                    record.seq))
        return violations

    # -- invariant 3: successful migrations ran the whole protocol -----------

    def _check_migration_protocol(self) -> List[Violation]:
        violations: List[Violation] = []
        begins: Dict[int, Any] = {}
        phases: Dict[int, List[str]] = {}
        for record in self.journal:
            if record.track != "migration":
                continue
            if record.kind == KIND_BEGIN:
                begins[record.span] = record
                phases[record.span] = []
            elif record.kind == KIND_INSTANT and record.name == "phase":
                args = record.args or {}
                span = args.get("span", 0)
                if span in phases:
                    phases[span].append(args.get("phase", ""))
            elif record.kind == KIND_END:
                begin = begins.pop(record.span, None)
                observed = phases.pop(record.span, None)
                if begin is None:
                    continue  # begin evicted by the ring: unverifiable
                outcome = (record.args or {}).get("outcome", "")
                if outcome != "ok":
                    continue  # aborted migrations make no phase promise
                required = REQUIRED_PHASES.get(begin.name)
                if required is None:
                    continue
                if not _is_subsequence(required, observed or []):
                    args = begin.args or {}
                    violations.append(Violation(
                        "migration-protocol",
                        f"{begin.name} migration span {record.span} "
                        f"(shard {args.get('shard', '?')}) ended ok with "
                        f"phases {observed} — requires {list(required)} "
                        f"in order",
                        record.seq))
        # Spans still open at the end of the run are in-flight, not torn.
        return violations

    # -- cross-check: final map vs transition records ------------------------

    def check_shard_map(self, shard_map) -> List[Violation]:
        """Every routable address in ``shard_map`` must have a journaled
        READY transition for that shard.

        Catches assignment paths that mutate placement without going
        through the instrumented :class:`~repro.core.shard_map.AssignmentTable`
        chokepoint.
        """
        explained: set = set()  # (app, shard, address) seen READY
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "shards":
                continue
            args = record.args or {}
            if args.get("state") == "ready":
                explained.add((args.get("app", ""), args.get("shard", ""),
                               args.get("address", "")))
        violations: List[Violation] = []
        for entry in shard_map.entries:
            for address in entry.all_addresses():
                if (shard_map.app, entry.shard_id, address) not in explained:
                    violations.append(Violation(
                        "map-coverage",
                        f"map v{shard_map.version}: {entry.shard_id} routes "
                        f"to {address} but the journal has no READY "
                        f"transition for it",
                        -1))
        return violations
