"""Trace-driven invariant checking: replay the journal, assert the protocol.

The :class:`TraceChecker` turns the observability journal into an oracle
for cross-layer invariants that no single unit test sees end to end:

* **single completion** — no span ends twice; in particular an RPC never
  both delivers and fails (the class of bug the ``rpcs_failed``
  double-count fix addressed);
* **primary uniqueness** — replaying the ``shards`` transition records,
  a shard never has two READY primaries at any point in time;
* **migration protocol** — every migration span that ends with
  ``outcome == "ok"`` contains its protocol's full phase sequence in
  order (§4.3's prepare → forward → handoff → publish → drop_old for the
  graceful path); a "torn" migration that claims success without the
  complete handshake is flagged.

:meth:`TraceChecker.check_shard_map` additionally cross-checks a final
published :class:`~repro.core.shard_map.ShardMap` against the journal:
every routable address must be explained by a READY transition record —
the regression guard for paths (MiniSM partitions, emergency placement)
that once bypassed the orchestrator's bookkeeping.

The checker tolerates ring-buffer truncation: span ends whose begins were
evicted, and spans still open when the run stopped, are not violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .tracer import KIND_BEGIN, KIND_END, KIND_INSTANT, Journal

__all__ = ["Violation", "TraceChecker", "REQUIRED_PHASES"]

#: Per migration kind, the in-order phase sequence an ``ok`` span must show.
REQUIRED_PHASES: Dict[str, Tuple[str, ...]] = {
    "graceful": ("prepare", "forward", "handoff", "publish", "drop_old"),
    "abrupt": ("drop_old", "handoff"),
    "secondary": ("add_new", "drop_old"),
}


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to a journal sequence number."""

    invariant: str
    message: str
    seq: int

    def __str__(self) -> str:
        return f"[{self.invariant} @seq={self.seq}] {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        return {"invariant": self.invariant, "message": self.message,
                "seq": self.seq}


def _is_subsequence(needle: Tuple[str, ...], haystack: List[str]) -> bool:
    it = iter(haystack)
    return all(item in it for item in needle)


class TraceChecker:
    """Replays a :class:`~repro.obs.tracer.Journal` against the invariants."""

    def __init__(self, journal: Journal) -> None:
        self.journal = journal

    # -- entry points --------------------------------------------------------

    def check(self) -> List[Violation]:
        """Run the full journal invariant set; [] means clean."""
        violations: List[Violation] = []
        violations.extend(self._check_single_completion())
        violations.extend(self._check_primary_uniqueness())
        violations.extend(self._check_migration_protocol())
        violations.extend(self.check_fault_recovery())
        violations.extend(self.check_fluid())
        violations.extend(self.check_scatter())
        return violations

    def coverage(self) -> "frozenset[str]":
        """Run the full check and fold the verdict into the journal's
        coverage fingerprint (``violation:<invariant>`` keys included)."""
        from .coverage import coverage_keys
        return coverage_keys(self.journal, self.check())

    def assert_clean(self) -> None:
        violations = self.check()
        if violations:
            raise AssertionError(
                "trace invariants violated:\n"
                + "\n".join(f"  {v}" for v in violations))

    # -- invariant 1: spans settle exactly once ------------------------------

    def _check_single_completion(self) -> List[Violation]:
        violations: List[Violation] = []
        ended: Dict[int, Any] = {}  # span -> first end record
        for record in self.journal:
            if record.kind != KIND_END:
                continue
            first = ended.get(record.span)
            if first is None:
                ended[record.span] = record
                continue
            detail = ""
            if record.track == "net" or first.track == "net":
                first_ok = (first.args or {}).get("ok")
                this_ok = (record.args or {}).get("ok")
                detail = (f" (rpc completed as ok={first_ok} "
                          f"then again as ok={this_ok})")
            violations.append(Violation(
                "single-completion",
                f"span {record.span} ({first.track}/{first.name}) "
                f"ended more than once{detail}",
                record.seq))
        return violations

    # -- invariant 2: one READY primary per shard ----------------------------

    def _check_primary_uniqueness(self) -> List[Violation]:
        violations: List[Violation] = []
        # (app, shard) -> {replica_id: (role, state, address)}
        shards: Dict[Tuple[str, str], Dict[str, Tuple[str, str, str]]] = {}
        flagged: set = set()
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "shards":
                continue
            args = record.args or {}
            if args.get("op") == "reset":
                # Control-plane failover: a successor orchestrator starts a
                # fresh replica-id space for the app.  Its restored READY
                # primaries must not be compared against the dead
                # incarnation's.
                app = args.get("app", "")
                for key in [k for k in shards if k[0] == app]:
                    shards[key].clear()
                    flagged.discard(key)
                continue
            key = (args.get("app", ""), args.get("shard", ""))
            replicas = shards.setdefault(key, {})
            replica_id = args.get("replica", "")
            if args.get("op") == "drop":
                replicas.pop(replica_id, None)
                continue
            replicas[replica_id] = (args.get("role", ""),
                                    args.get("state", ""),
                                    args.get("address", ""))
            primaries = [a for (r, s, a) in replicas.values()
                         if r == "primary" and s == "ready"]
            if len(primaries) > 1 and key not in flagged:
                flagged.add(key)
                violations.append(Violation(
                    "primary-uniqueness",
                    f"shard {key[1]} of {key[0]} has {len(primaries)} READY "
                    f"primaries at t={record.time!r}: {sorted(primaries)}",
                    record.seq))
        return violations

    # -- invariant 3: successful migrations ran the whole protocol -----------

    def _check_migration_protocol(self) -> List[Violation]:
        violations: List[Violation] = []
        begins: Dict[int, Any] = {}
        phases: Dict[int, List[str]] = {}
        for record in self.journal:
            if record.track != "migration":
                continue
            if record.kind == KIND_BEGIN:
                begins[record.span] = record
                phases[record.span] = []
            elif record.kind == KIND_INSTANT and record.name == "phase":
                args = record.args or {}
                span = args.get("span", 0)
                if span in phases:
                    phases[span].append(args.get("phase", ""))
            elif record.kind == KIND_END:
                begin = begins.pop(record.span, None)
                observed = phases.pop(record.span, None)
                if begin is None:
                    continue  # begin evicted by the ring: unverifiable
                outcome = (record.args or {}).get("outcome", "")
                if outcome != "ok":
                    continue  # aborted migrations make no phase promise
                required = REQUIRED_PHASES.get(begin.name)
                if required is None:
                    continue
                if not _is_subsequence(required, observed or []):
                    args = begin.args or {}
                    violations.append(Violation(
                        "migration-protocol",
                        f"{begin.name} migration span {record.span} "
                        f"(shard {args.get('shard', '?')}) ended ok with "
                        f"phases {observed} — requires {list(required)} "
                        f"in order",
                        record.seq))
        # Spans still open at the end of the run are in-flight, not torn.
        return violations

    # -- chaos invariants (fault audit trail, §8.1 robustness) ---------------

    def check_fault_recovery(self) -> List[Violation]:
        """Every injected fault must have a matching recovery record.

        The chaos engine journals one ``chaos/fault`` instant per injected
        fault (keyed by a unique ``fault`` id) and one ``chaos/recover``
        when it reverts it.  A fault with no recovery means the scenario
        left the world broken (e.g. a stopped injector stranding a machine
        down); a recovery with no fault means a revert double-applied.
        Failed in-scenario probes (``chaos/probe`` with ``ok: False``)
        are surfaced here too.  Journals without a chaos track pass
        trivially.
        """
        violations: List[Violation] = []
        pending: Dict[str, Any] = {}  # fault id -> fault record
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "chaos":
                continue
            args = record.args or {}
            if record.name == "fault":
                fault = args.get("fault", "")
                if fault in pending:
                    violations.append(Violation(
                        "fault-recovery",
                        f"fault {fault!r} injected twice without a recovery "
                        f"in between",
                        record.seq))
                pending[fault] = record
            elif record.name == "recover":
                fault = args.get("fault", "")
                if pending.pop(fault, None) is None:
                    violations.append(Violation(
                        "fault-recovery",
                        f"recovery for {fault!r} without a matching fault "
                        f"(double-applied revert?)",
                        record.seq))
            elif record.name == "probe" and args.get("ok") is False:
                violations.append(Violation(
                    "fault-recovery",
                    f"scenario probe failed at t={record.time!r}: "
                    f"{args.get('check', '?')} — {args.get('detail', '')}",
                    record.seq))
        for fault, record in pending.items():
            violations.append(Violation(
                "fault-recovery",
                f"fault {fault!r} injected at t={record.time!r} has no "
                f"recovery record",
                record.seq))
        return violations

    # -- fluid traffic invariants (hybrid engine audit trail) ----------------

    def check_fluid(self) -> List[Violation]:
        """Audit the fluid engine's ``fluid/epoch`` records.

        Per (app, client) stream: epochs must be non-overlapping and in
        time order, arrivals must be conserved (``ok + failed`` equals
        ``arrivals`` up to integration rounding), and the healthy share
        must stay in ``[0, 1]``.  Journals without a fluid track pass
        trivially — the event path is unaffected.
        """
        violations: List[Violation] = []
        last_end: Dict[Tuple[str, str], float] = {}
        for record in self.journal:
            if (record.kind != KIND_INSTANT or record.track != "fluid"
                    or record.name != "epoch"):
                continue
            args = record.args or {}
            key = (args.get("app", ""), args.get("client", ""))
            t0 = args.get("t0", 0.0)
            t1 = args.get("t1", 0.0)
            previous = last_end.get(key)
            if previous is not None and t0 < previous - 1e-9:
                violations.append(Violation(
                    "fluid-epochs",
                    f"fluid stream {key} epoch [{t0!r}, {t1!r}] overlaps "
                    f"the previous epoch ending at {previous!r}",
                    record.seq))
            last_end[key] = max(t1, previous or t1)
            arrivals = args.get("arrivals", 0.0)
            ok = args.get("ok", 0.0)
            failed = args.get("failed", 0.0)
            slack = max(1e-6, 1e-6 * arrivals) + 2e-6  # journal rounding
            if abs((ok + failed) - arrivals) > slack:
                violations.append(Violation(
                    "fluid-conservation",
                    f"fluid stream {key} epoch [{t0!r}, {t1!r}]: "
                    f"ok({ok}) + failed({failed}) != arrivals({arrivals})",
                    record.seq))
            share = args.get("healthy_share", 0.0)
            if not 0.0 <= share <= 1.0 + 1e-9:
                violations.append(Violation(
                    "fluid-share",
                    f"fluid stream {key} healthy_share {share!r} outside "
                    f"[0, 1] at t={record.time!r}",
                    record.seq))
        return violations

    # -- scatter-gather invariants (fan-out audit trail) ---------------------

    def check_scatter(self) -> List[Violation]:
        """Audit scatter-gather fan-outs: a merge waits for all its legs.

        The scatter client journals one ``scatter/fanout`` instant per
        request (with its ``legs`` count), one ``scatter/leg`` per leg
        completion and one ``scatter/merge`` when the reply is assembled.
        Per scatter id: at most one fanout and one merge; a merge must
        account for exactly the fanned-out leg count (a merge firing
        early — before every leg landed — is the tail-amplification bug
        class this app exists to surface), its ``ok`` must agree with
        ``failed_legs == 0``, and it must not precede its fanout in time.
        Fanouts with no merge are in-flight at run end, not violations;
        legs/merges whose fanout was evicted by the ring are unverifiable
        and skipped.  Journals without a scatter track pass trivially.
        """
        violations: List[Violation] = []
        fanouts: Dict[str, Any] = {}     # scatter id -> fanout record
        leg_counts: Dict[str, int] = {}  # scatter id -> legs seen
        merged: set = set()
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "scatter":
                continue
            args = record.args or {}
            scatter = args.get("scatter", "")
            if record.name == "fanout":
                if scatter in fanouts:
                    violations.append(Violation(
                        "scatter-protocol",
                        f"scatter {scatter!r} fanned out twice",
                        record.seq))
                    continue
                fanouts[scatter] = record
                leg_counts[scatter] = 0
            elif record.name == "leg":
                if scatter in leg_counts:
                    leg_counts[scatter] += 1
            elif record.name == "merge":
                if scatter in merged:
                    violations.append(Violation(
                        "scatter-protocol",
                        f"scatter {scatter!r} merged twice",
                        record.seq))
                    continue
                merged.add(scatter)
                fanout = fanouts.pop(scatter, None)
                seen = leg_counts.pop(scatter, None)
                if fanout is None:
                    continue  # fanout evicted by the ring: unverifiable
                expected = (fanout.args or {}).get("legs", 0)
                if seen != expected or args.get("legs") != expected:
                    violations.append(Violation(
                        "scatter-protocol",
                        f"scatter {scatter!r} merged after {seen} of "
                        f"{expected} legs (merge claims "
                        f"{args.get('legs')})",
                        record.seq))
                if args.get("ok") is not (args.get("failed_legs", 0) == 0):
                    violations.append(Violation(
                        "scatter-protocol",
                        f"scatter {scatter!r} merge ok={args.get('ok')} "
                        f"inconsistent with failed_legs="
                        f"{args.get('failed_legs')}",
                        record.seq))
                if record.time < fanout.time - 1e-9:
                    violations.append(Violation(
                        "scatter-protocol",
                        f"scatter {scatter!r} merged at t={record.time!r} "
                        f"before its fanout at t={fanout.time!r}",
                        record.seq))
        return violations

    def check_failover_detection(self, bound: float) -> List[Violation]:
        """Each crashed server must recover or fail over within ``bound``.

        ``chaos/fault`` records carry the application-server addresses the
        fault took down (``addresses``); within ``bound`` seconds of the
        fault, each must either come back (the fault's ``recover``) or
        receive an ``orchestrator/failover`` instant (replicas recreated
        elsewhere).  ``bound`` should cover detection (the ZK session
        timeout) plus the orchestrator's failover grace.
        """
        faults: List[Tuple[int, float, str, List[str]]] = []
        recovers: Dict[str, float] = {}
        failovers: List[Tuple[float, str]] = []
        for record in self.journal:
            if record.kind != KIND_INSTANT:
                continue
            args = record.args or {}
            if record.track == "chaos":
                if record.name == "fault" and args.get("addresses"):
                    faults.append((record.seq, record.time,
                                   args.get("fault", ""),
                                   list(args["addresses"])))
                elif record.name == "recover":
                    recovers.setdefault(args.get("fault", ""), record.time)
            elif record.track == "orchestrator" and record.name == "failover":
                failovers.append((record.time, args.get("address", "")))
        violations: List[Violation] = []
        for seq, start, fault, addresses in faults:
            recover_time = recovers.get(fault)
            recovered = (recover_time is not None
                         and recover_time - start <= bound)
            for address in addresses:
                if recovered:
                    continue
                if any(start <= t <= start + bound and a == address
                       for t, a in failovers):
                    continue
                violations.append(Violation(
                    "failover-detection",
                    f"{address} went down with fault {fault!r} at "
                    f"t={start!r} and neither recovered nor failed over "
                    f"within {bound}s",
                    seq))
        return violations

    def check_availability(self, bound: float,
                           until: Optional[float] = None) -> List[Violation]:
        """No shard may lack a READY primary for longer than ``bound``.

        Replays the ``shards`` transition records and measures, per
        (app, shard), every interval with no READY primary that *starts
        after the shard first became available* (initial placement is
        deploy latency, not an outage).  An interval still open at
        ``until`` (default: the last journal timestamp) counts against
        the bound too.
        """
        # (app, shard) -> replica_id -> (role, state)
        shards: Dict[Tuple[str, str], Dict[str, Tuple[str, str]]] = {}
        gap_start: Dict[Tuple[str, str], float] = {}
        ever_ready: Dict[Tuple[str, str], bool] = {}
        violations: List[Violation] = []
        flagged: set = set()
        last_time = 0.0

        def has_ready_primary(key: Tuple[str, str]) -> bool:
            return any(role == "primary" and state == "ready"
                       for role, state in shards.get(key, {}).values())

        for record in self.journal:
            last_time = record.time
            if record.kind != KIND_INSTANT or record.track != "shards":
                continue
            args = record.args or {}
            if args.get("op") == "reset":
                app = args.get("app", "")
                for key in [k for k in shards if k[0] == app]:
                    shards[key].clear()
                    # The restore re-adds replicas at the same instant; a
                    # real gap only opens if it fails to.
                    if ever_ready.get(key) and key not in gap_start:
                        gap_start[key] = record.time
                continue
            key = (args.get("app", ""), args.get("shard", ""))
            replicas = shards.setdefault(key, {})
            replica_id = args.get("replica", "")
            was_ready = has_ready_primary(key)
            if args.get("op") == "drop":
                replicas.pop(replica_id, None)
            else:
                replicas[replica_id] = (args.get("role", ""),
                                        args.get("state", ""))
            now_ready = has_ready_primary(key)
            if now_ready:
                ever_ready[key] = True
                start = gap_start.pop(key, None)
                if (start is not None and record.time - start > bound
                        and key not in flagged):
                    flagged.add(key)
                    violations.append(Violation(
                        "availability",
                        f"shard {key[1]} of {key[0]} had no READY primary "
                        f"for {record.time - start:.3f}s (t={start!r}.."
                        f"{record.time!r}), bound {bound}s",
                        record.seq))
            elif was_ready and key not in gap_start:
                gap_start[key] = record.time
        end = until if until is not None else last_time
        for key, start in gap_start.items():
            if ever_ready.get(key) and end - start > bound and key not in flagged:
                violations.append(Violation(
                    "availability",
                    f"shard {key[1]} of {key[0]} had no READY primary from "
                    f"t={start!r} to the end of the run "
                    f"({end - start:.3f}s > {bound}s)",
                    -1))
        return violations

    # -- cross-check: final map vs transition records ------------------------

    def check_shard_map(self, shard_map) -> List[Violation]:
        """Every routable address in ``shard_map`` must have a journaled
        READY transition for that shard.

        Catches assignment paths that mutate placement without going
        through the instrumented :class:`~repro.core.shard_map.AssignmentTable`
        chokepoint.
        """
        explained: set = set()  # (app, shard, address) seen READY
        for record in self.journal:
            if record.kind != KIND_INSTANT or record.track != "shards":
                continue
            args = record.args or {}
            if args.get("state") == "ready":
                explained.add((args.get("app", ""), args.get("shard", ""),
                               args.get("address", "")))
        violations: List[Violation] = []
        for entry in shard_map.entries:
            for address in entry.all_addresses():
                if (shard_map.app, entry.shard_id, address) not in explained:
                    violations.append(Violation(
                        "map-coverage",
                        f"map v{shard_map.version}: {entry.shard_id} routes "
                        f"to {address} but the journal has no READY "
                        f"transition for it",
                        -1))
        return violations
