"""repro.obs — deterministic observability for the simulated stack.

One :class:`Observability` object bundles the three pieces every layer
shares:

* a :class:`~repro.obs.tracer.Tracer` writing sim-time spans/instants
  into a bounded ring-buffer :class:`~repro.obs.tracer.Journal`;
* a :class:`~repro.obs.metrics.MetricsRegistry` of named
  counters/gauges/histograms;
* the exporters (:mod:`~repro.obs.trace_export`) and the
  :class:`~repro.obs.checker.TraceChecker` that replays the journal
  against cross-layer invariants.

Wiring pattern: :meth:`repro.harness.SimCluster.build` accepts an ``obs``
argument and threads the tracer through the engine, network, routers,
orchestrators and migration executor.  When no explicit ``obs`` is
passed, the *module default* applies — :data:`NO_OBS` unless a caller
activated a context with :func:`use`::

    import repro.obs as obs

    with obs.use(obs.Observability()) as o:
        result = fig17_availability.run(...)   # builds its own cluster
    trace_export.write_chrome_trace(o.journal, "trace.json")

which is how ``--trace`` works for any figure without changing figure
signatures.

Determinism contract: records carry simulated time and counter-allocated
ids only; with the same seed, an enabled run journals a byte-identical
sequence (``Journal.digest()``), and produces the exact same simulation
results as a disabled run (instrumentation is pure observation — no RNG
draws, no scheduling).  Wall-clock measurements appear only under
``wall``-prefixed arg keys, which the digest skips.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from . import trace_export
from .checker import REQUIRED_PHASES, TraceChecker, Violation
from .coverage import coverage_keys, coverage_summary, violation_invariants
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NO_TRACER, Journal, NullTracer, TraceRecord, Tracer

__all__ = [
    "Observability", "NO_OBS", "get_default", "set_default", "use",
    "Tracer", "NullTracer", "NO_TRACER", "Journal", "TraceRecord",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "TraceChecker", "Violation", "REQUIRED_PHASES", "trace_export",
    "coverage_keys", "coverage_summary", "violation_invariants",
]


class Observability:
    """An enabled tracing + metrics context for one run."""

    enabled = True

    def __init__(self, capacity: int = 1 << 20,
                 engine_sample: int = 64) -> None:
        #: Every ``engine_sample``-th engine dispatch gets an instant +
        #: queue-depth counter sample (1 = every event; engine tracks stay
        #: readable and the journal bounded at figure scale).
        self.engine_sample = max(1, engine_sample)
        self.capacity = capacity
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(Journal(capacity))
        self.tracer.registry = self.metrics
        self._segments: Dict[str, Tracer] = {}

    @property
    def journal(self) -> Journal:
        return self.tracer.journal

    # -- PDES region segments ------------------------------------------------

    def segment(self, name: str) -> Tracer:
        """A per-region journal segment for PDES runs.

        Each region engine records into its own tracer + journal so
        concurrent workers never contend on one ring buffer; span ids are
        offset per segment (10^7 apart) so spans stay unique across the
        merge.  Without segments (the single-process path) nothing here
        runs and digests are untouched.
        """
        tracer = self._segments.get(name)
        if tracer is None:
            tracer = Tracer(Journal(self.capacity))
            tracer.registry = self.metrics
            tracer._next_span = 1 + (len(self._segments) + 1) * 10 ** 7
            self._segments[name] = tracer
        return tracer

    def segments(self) -> Dict[str, Tracer]:
        return dict(self._segments)

    def merged_journal(self) -> Journal:
        """One digest-stable journal merging the main journal (rank 0)
        and every region segment (ranks by sorted name).

        Records merge in ``(time, rank, seq)`` order — the journal-side
        image of the PDES ``(time, src_region, seq)`` contract — and are
        re-sequenced, so a parallel run's merged digest is reproducible
        run-to-run regardless of worker scheduling.  With no segments this
        returns the main journal itself (digest bit-identical to serial).
        """
        if not self._segments:
            return self.journal
        ranked = [(0, self.journal)]
        for rank, name in enumerate(sorted(self._segments), start=1):
            ranked.append((rank, self._segments[name].journal))
        entries = []
        for rank, journal in ranked:
            for record in journal:
                entries.append((record.time, rank, record.seq, record))
        entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
        merged = Journal(capacity=max(1, len(entries)))
        for seq, (_, _, _, record) in enumerate(entries):
            merged.append(TraceRecord(seq, record.kind, record.track,
                                      record.name, record.time,
                                      record.span, record.args))
        return merged

    def merged_digest(self) -> str:
        return self.merged_journal().digest()


class _DisabledObservability(Observability):
    """The no-op context: shared singleton, nothing records."""

    enabled = False

    def __init__(self) -> None:
        self.engine_sample = 0
        self.capacity = 1
        self.metrics = MetricsRegistry()
        self.tracer = NO_TRACER
        self._segments = {}

    def segment(self, name: str) -> Tracer:
        return NO_TRACER


#: Module-level disabled singleton — the default everywhere.
NO_OBS = _DisabledObservability()
NO_TRACER.registry = NO_OBS.metrics

_default: Observability = NO_OBS


def get_default() -> Observability:
    """The ambient observability context (:data:`NO_OBS` unless set)."""
    return _default


def set_default(obs: Optional[Observability]) -> None:
    global _default
    _default = obs if obs is not None else NO_OBS


@contextmanager
def use(obs: Observability) -> Iterator[Observability]:
    """Make ``obs`` the default context for the duration of the block."""
    global _default
    previous = _default
    _default = obs
    try:
        yield obs
    finally:
        _default = previous
