"""repro.obs — deterministic observability for the simulated stack.

One :class:`Observability` object bundles the three pieces every layer
shares:

* a :class:`~repro.obs.tracer.Tracer` writing sim-time spans/instants
  into a bounded ring-buffer :class:`~repro.obs.tracer.Journal`;
* a :class:`~repro.obs.metrics.MetricsRegistry` of named
  counters/gauges/histograms;
* the exporters (:mod:`~repro.obs.trace_export`) and the
  :class:`~repro.obs.checker.TraceChecker` that replays the journal
  against cross-layer invariants.

Wiring pattern: :meth:`repro.harness.SimCluster.build` accepts an ``obs``
argument and threads the tracer through the engine, network, routers,
orchestrators and migration executor.  When no explicit ``obs`` is
passed, the *module default* applies — :data:`NO_OBS` unless a caller
activated a context with :func:`use`::

    import repro.obs as obs

    with obs.use(obs.Observability()) as o:
        result = fig17_availability.run(...)   # builds its own cluster
    trace_export.write_chrome_trace(o.journal, "trace.json")

which is how ``--trace`` works for any figure without changing figure
signatures.

Determinism contract: records carry simulated time and counter-allocated
ids only; with the same seed, an enabled run journals a byte-identical
sequence (``Journal.digest()``), and produces the exact same simulation
results as a disabled run (instrumentation is pure observation — no RNG
draws, no scheduling).  Wall-clock measurements appear only under
``wall``-prefixed arg keys, which the digest skips.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from . import trace_export
from .checker import REQUIRED_PHASES, TraceChecker, Violation
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import NO_TRACER, Journal, NullTracer, TraceRecord, Tracer

__all__ = [
    "Observability", "NO_OBS", "get_default", "set_default", "use",
    "Tracer", "NullTracer", "NO_TRACER", "Journal", "TraceRecord",
    "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "TraceChecker", "Violation", "REQUIRED_PHASES", "trace_export",
]


class Observability:
    """An enabled tracing + metrics context for one run."""

    enabled = True

    def __init__(self, capacity: int = 1 << 20,
                 engine_sample: int = 64) -> None:
        #: Every ``engine_sample``-th engine dispatch gets an instant +
        #: queue-depth counter sample (1 = every event; engine tracks stay
        #: readable and the journal bounded at figure scale).
        self.engine_sample = max(1, engine_sample)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(Journal(capacity))
        self.tracer.registry = self.metrics

    @property
    def journal(self) -> Journal:
        return self.tracer.journal


class _DisabledObservability(Observability):
    """The no-op context: shared singleton, nothing records."""

    enabled = False

    def __init__(self) -> None:
        self.engine_sample = 0
        self.metrics = MetricsRegistry()
        self.tracer = NO_TRACER


#: Module-level disabled singleton — the default everywhere.
NO_OBS = _DisabledObservability()
NO_TRACER.registry = NO_OBS.metrics

_default: Observability = NO_OBS


def get_default() -> Observability:
    """The ambient observability context (:data:`NO_OBS` unless set)."""
    return _default


def set_default(obs: Optional[Observability]) -> None:
    global _default
    _default = obs if obs is not None else NO_OBS


@contextmanager
def use(obs: Observability) -> Iterator[Observability]:
    """Make ``obs`` the default context for the duration of the block."""
    global _default
    previous = _default
    _default = obs
    try:
        yield obs
    finally:
        _default = previous
