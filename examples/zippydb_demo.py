"""ZippyDB: a Paxos-replicated store on SM, surviving primary failure.

Each shard has one SM-elected primary (the Multi-Paxos leader) and two
secondaries (acceptors/learners) spread across three regions.  Writes
commit on a majority quorum over the simulated WAN.  We then crash the
machine hosting a primary: SM promotes a secondary, the new leader's
ranged prepare adopts everything the old leader committed, and reads
observe every acknowledged write — Paxos safety, end to end.

Run:  python examples/zippydb_demo.py
"""

from repro.apps.zippydb import ZippyDBApp
from repro.core.orchestrator import OrchestratorConfig
from repro.core.shard_map import Role
from repro.core.spec import AppSpec, ReplicationStrategy, uniform_shards
from repro.harness import SimCluster, deploy_app


def main() -> None:
    cluster = SimCluster.build(regions=("FRC", "PRN", "ODN"),
                               machines_per_region=4, seed=1)
    spec = AppSpec(
        name="zippy",
        shards=uniform_shards(6, key_space=600, replica_count=3),
        replication=ReplicationStrategy.PRIMARY_SECONDARY,
    )
    zdb = ZippyDBApp(cluster.engine, cluster.network, cluster.discovery,
                     spec)
    app = deploy_app(
        cluster, spec, {"FRC": 3, "PRN": 3, "ODN": 3},
        handler_factory=zdb.handler_factory,
        on_server_created=zdb.on_server_created,
        orchestrator_config=OrchestratorConfig(failover_grace=15.0),
        settle=60.0)
    print(f"deployed: {app.ready_fraction():.0%} ready, "
          f"replicas span regions for every shard")

    client = app.client(cluster, "PRN", rpc_timeout=5.0)
    acked = {}

    def write(key, value):
        process = client.request(key, {"op": "put", "key": key,
                                       "value": value})

        def on_done(outcome):
            if outcome.ok:
                acked[key] = value

        process.done_signal._add_waiter(on_done)

    for index in range(20):
        write(index, f"value-{index}")
    cluster.run(until=cluster.engine.now + 10.0)
    print(f"writes acknowledged by quorum: {len(acked)}/20 "
          f"(paxos commits: {zdb.commits})")

    # Crash the machine hosting shard0's primary.
    primary = app.orchestrator.table.primary_of("shard0")
    victim_record = app.orchestrator.servers[primary.address]
    region = victim_record.machine.region
    print(f"\ncrashing shard0's primary ({primary.address} in {region})...")
    cluster.twines[region].fail_machine(victim_record.machine.machine_id)
    cluster.run(until=cluster.engine.now + 60.0)

    new_primary = app.orchestrator.table.primary_of("shard0")
    print(f"SM promoted a new primary: {new_primary.address} "
          f"(role={new_primary.role.value})")

    # Every acknowledged write must still be readable.
    outcomes = {}
    for key, expected in acked.items():
        process = client.request(key, {"op": "get", "key": key},
                                 prefer_primary=False)
        process.done_signal._add_waiter(
            lambda outcome, k=key: outcomes.setdefault(k, outcome))
    cluster.run(until=cluster.engine.now + 10.0)

    lost = [key for key, expected in acked.items()
            if not outcomes[key].ok
            or outcomes[key].value["value"] != expected]
    print(f"acknowledged writes surviving failover: "
          f"{len(acked) - len(lost)}/{len(acked)}")
    assert not lost, f"lost writes: {lost}"
    print("no acknowledged write was lost — quorum replication held.")


if __name__ == "__main__":
    main()
