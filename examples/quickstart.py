"""Quickstart: deploy a sharded key-value store on Shard Manager.

Builds a three-region simulated fleet, deploys a Laser-like primary-only
KV store (app-key range sharding, so prefix scans work), runs client
traffic, and prints the shard map and load-balancing state.

Run:  python examples/quickstart.py
"""

from repro.app.client import WorkloadRecorder
from repro.apps.kvstore import KVStoreApp
from repro.core.spec import AppSpec, ReplicationStrategy, uniform_shards
from repro.harness import SimCluster, deploy_app


def main() -> None:
    # 1. A simulated world: three regions, ten machines each.
    cluster = SimCluster.build(regions=("FRC", "PRN", "ODN"),
                               machines_per_region=10, seed=42)

    # 2. An application spec: the *application* decides the key->shard
    #    mapping (app-key, app-sharding — §3.1 of the paper).
    spec = AppSpec(
        name="kv",
        shards=uniform_shards(30, key_space=3_000),
        replication=ReplicationStrategy.PRIMARY_ONLY,
    )

    # 3. Application logic: a KV store whose soft state rebuilds from an
    #    external store on migration/restart.
    kv = KVStoreApp(spec)

    # 4. Deploy: containers via Twine, servers wired to ZooKeeper, the
    #    orchestrator places shards, the TaskController guards restarts.
    app = deploy_app(cluster, spec,
                     servers_per_region={"FRC": 4, "PRN": 4, "ODN": 4},
                     handler_factory=kv.handler_factory,
                     settle=60.0)
    print(f"deployed: {app.ready_fraction():.0%} of shards ready")

    # 5. A client in FRC: writes, reads and a prefix scan.
    client = app.client(cluster, "FRC")
    for key, value in [(5, "hello"), (7, "world"), (42, "shard-manager")]:
        client.request(key, {"op": "put", "key": key, "value": value})
    cluster.run(until=cluster.engine.now + 5.0)

    read = client.request(5, {"op": "get", "key": 5})
    scan = client.request(0, {"op": "scan", "low": 0, "high": 100})
    cluster.run(until=cluster.engine.now + 5.0)
    print("get(5)   ->", read.result.value)
    print("scan     ->", scan.result.value["items"])

    # 6. Sustained load, to exercise routing and load reporting.
    recorder = WorkloadRecorder.with_bucket(10.0)
    client.run_workload(duration=60.0, rate=lambda t: 50.0,
                        key_fn=lambda rng: rng.randrange(3_000),
                        recorder=recorder,
                        payload_fn=lambda key: {"op": "get", "key": key})
    cluster.run(until=cluster.engine.now + 70.0)
    print(f"workload: {recorder.succeeded}/{recorder.sent} requests ok "
          f"({recorder.success.overall_success_rate():.2%}), "
          f"mean latency {1000 * recorder.latency.mean():.1f} ms")

    # 7. Peek at the control plane.
    shard_map = cluster.discovery.latest("kv")
    print(f"shard map v{shard_map.version}: "
          f"{len(shard_map.entries)} shards, e.g. "
          f"{shard_map.entries[0].shard_id} -> "
          f"{shard_map.entries[0].primary}")
    by_server = {}
    for replica in app.orchestrator.table.all_replicas():
        by_server[replica.address] = by_server.get(replica.address, 0) + 1
    counts = sorted(by_server.values())
    print(f"shards per server: min {counts[0]}, max {counts[-1]} "
          f"(load balanced)")


if __name__ == "__main__":
    main()
