"""Direct use of the constraint solver (the paper's Figure 13 API).

Builds a placement problem by hand, declares hard constraints and
prioritized soft goals exactly like the paper's ReBalancer snippet, and
solves it — useful when adopting only SM's placement component, as the
composable-ecosystem applications do (§7, "Data Placer").

Run:  python examples/solver_playground.py
"""

import random

from repro.sim.rng import skewed_loads
from repro.solver import (
    AffinitySpec,
    BalanceSpec,
    CapacitySpec,
    ExclusionSpec,
    PlacementProblem,
    Rebalancer,
    ReplicaInfo,
    Scope,
    SearchConfig,
    ServerInfo,
    UtilizationSpec,
)


def main() -> None:
    rng = random.Random(0)
    regions = ("regionA", "regionB", "regionC")
    servers = [
        ServerInfo(name=f"server{i:02d}", region=regions[i % 3],
                   datacenter=f"dc{i % 6}", rack=f"rack{i % 12}",
                   capacity=(100.0, 64.0))  # cpu, network
        for i in range(30)
    ]
    # 120 shards x 2 replicas, 20x load skew, some with region preferences
    # — "shard1 in regionA and a stronger goal of shard2 in regionB".
    cpu = skewed_loads(rng, 240, skew=20.0, mean=55.0 * 30 / 240)
    replicas = []
    for shard in range(120):
        preferred = {0: "regionA", 1: "regionB"}.get(shard)
        weight = 2.0 if shard == 1 else 1.0
        for copy in range(2):
            index = shard * 2 + copy
            replicas.append(ReplicaInfo(
                name=f"shard{shard}_replica{copy + 1}",
                shard=f"shard{shard}",
                load=(cpu[index], cpu[index] * 0.4),
                preferred_region=preferred,
                preference_weight=weight,
            ))
    problem = PlacementProblem(["cpu", "network"], servers, replicas)
    problem.random_assignment(rng)

    # The Figure 13 statements, one for one:
    rebalancer = Rebalancer(problem)
    rebalancer.add_constraint(CapacitySpec(metric="cpu"))        # stmt 1
    rebalancer.add_constraint(CapacitySpec(metric="network"))    # stmt 2
    rebalancer.add_goal(BalanceSpec(metric="cpu"), weight=1.0)   # stmt 3
    rebalancer.add_goal(BalanceSpec(metric="network"), weight=0.5)  # stmt 4
    rebalancer.add_goal(AffinitySpec())                          # stmts 5-6
    rebalancer.add_goal(ExclusionSpec(scope=Scope.REGION))       # stmts 7-8
    rebalancer.add_goal(UtilizationSpec(metric="cpu", threshold=0.9))

    print("violations before:", rebalancer.violations_by_goal())
    result = rebalancer.solve(SearchConfig(time_budget=30.0))
    print("violations after :", rebalancer.violations_by_goal())
    print(f"{result.moves} moves + {result.swaps} swaps in "
          f"{result.solve_time:.2f}s "
          f"({result.evaluations} move evaluations)")

    # Where did the preferred shards land?  The preference is satisfied
    # when *one* replica sits in the preferred region; the spread goal
    # pushes the other replica to a different region.
    for shard, preferred in (("shard0", "regionA"), ("shard1", "regionB")):
        placements = []
        for index, replica in enumerate(problem.replicas):
            if replica.shard == shard:
                server = problem.servers[problem.assignment[index]]
                placements.append(server.region)
        print(f"{shard} (prefers {preferred}): replicas in {placements}")


if __name__ == "__main__":
    main()
