"""Geo-distributed deployment surviving a whole-region outage (Fig 19).

A secondary-only application spreads each shard's two replicas across
three regions, with 40% of shards preferring FRC for locality.  When FRC
fails, clients transparently fail over to PRN/ODN replicas and SM
recreates the lost replicas; when FRC recovers, SM migrates replicas back
for locality.

Run:  python examples/geo_failover.py
"""

from repro.app.client import WorkloadRecorder
from repro.core.orchestrator import OrchestratorConfig
from repro.core.spec import AppSpec, ReplicationStrategy, uniform_shards
from repro.harness import SimCluster, deploy_app


def main() -> None:
    cluster = SimCluster.build(regions=("FRC", "PRN", "ODN"),
                               machines_per_region=8, seed=3)
    shards = 120
    ec_shards = 48  # "east-coast" shards preferring FRC
    spec = AppSpec(
        name="geo",
        shards=uniform_shards(
            shards, key_space=shards * 10, replica_count=2,
            preferred_regions={i: "FRC" for i in range(ec_shards)}),
        replication=ReplicationStrategy.SECONDARY_ONLY,
    )
    app = deploy_app(
        cluster, spec, {"FRC": 6, "PRN": 6, "ODN": 6},
        orchestrator_config=OrchestratorConfig(
            failover_grace=20.0, rebalance_interval=20.0,
            max_moves_per_round=100),
        settle=90.0)

    table = app.orchestrator.table
    servers = app.orchestrator.servers

    def describe() -> str:
        in_frc = sum(
            1 for index in range(ec_shards)
            if any(servers[r.address].machine.region == "FRC"
                   for r in table.replicas_of(f"shard{index}")
                   if r.address in servers and servers[r.address].alive))
        return f"EC shards with a live FRC replica: {in_frc}/{ec_shards}"

    print("steady state:", describe())

    client = app.client(cluster, "FRC")
    recorder = WorkloadRecorder.with_bucket(10.0)
    ec_key_limit = (shards * 10 // shards) * ec_shards
    client.run_workload(duration=560.0, rate=lambda t: 20.0,
                        key_fn=lambda rng: rng.randrange(ec_key_limit),
                        recorder=recorder, prefer_primary=False)

    t0 = cluster.engine.now
    cluster.engine.call_at(t0 + 90, lambda: cluster.twines["FRC"].fail_region())
    cluster.engine.call_at(t0 + 450,
                           lambda: cluster.twines["FRC"].repair_region())

    for checkpoint in (80, 150, 440, 560):
        cluster.run(until=t0 + checkpoint)
        window = recorder.latency.between(t0 + checkpoint - 60,
                                          t0 + checkpoint)
        latency = 1000 * window.mean() if len(window) else float("nan")
        print(f"t={checkpoint:4d}s  mean latency {latency:6.1f} ms   "
              + describe())

    print(f"\nsuccess rate through outage and recovery: "
          f"{recorder.success.overall_success_rate():.4f}")
    print("shape: local -> cross-region plateau during the outage -> "
          "local again after SM moves replicas home.")


if __name__ == "__main__":
    main()
