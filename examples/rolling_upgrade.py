"""Zero-downtime rolling upgrade (the Figure 17 scenario, interactive).

Deploys a primary-only application, starts client traffic, then performs
a rolling software upgrade of every container.  SM's TaskController
negotiates each restart with the cluster manager and drains shards with
the five-step graceful primary migration first — watch the success rate
stay at 100% while every container restarts.

Run:  python examples/rolling_upgrade.py
"""

from repro.app.client import WorkloadRecorder
from repro.core.orchestrator import OrchestratorConfig
from repro.core.spec import AppSpec, ReplicationStrategy, uniform_shards
from repro.harness import SimCluster, deploy_app


def main() -> None:
    servers = 12
    shards = 240
    cluster = SimCluster.build(regions=("FRC",),
                               machines_per_region=servers + 2, seed=7)
    spec = AppSpec(
        name="svc",
        shards=uniform_shards(shards, key_space=shards * 16),
        replication=ReplicationStrategy.PRIMARY_ONLY,
        max_concurrent_container_ops=2,  # the app's global restart cap
    )
    app = deploy_app(
        cluster, spec, {"FRC": servers},
        orchestrator_config=OrchestratorConfig(drain_concurrency=4),
        settle=60.0)
    print(f"deployed {shards} shards on {servers} servers "
          f"({app.ready_fraction():.0%} ready)")

    client = app.client(cluster, "FRC", attempts=1)
    recorder = WorkloadRecorder.with_bucket(30.0)
    client.run_workload(duration=1_200.0, rate=lambda t: 40.0,
                        key_fn=lambda rng: rng.randrange(shards * 16),
                        recorder=recorder)

    print("starting rolling upgrade (restart every container)...")
    upgrade = cluster.twines["FRC"].start_rolling_upgrade(
        "svc", max_concurrent=2, restart_duration=30.0)
    while not upgrade.done:
        cluster.run(until=cluster.engine.now + 60.0)
        print(f"  t={cluster.engine.now:6.0f}s  upgraded "
              f"{upgrade.completed:2d}/{upgrade.total}  "
              f"moves so far: "
              f"{app.orchestrator.executor.stats.graceful_migrations}")

    cluster.run(until=cluster.engine.now + 60.0)
    duration = upgrade.finished_at - upgrade.started_at
    print(f"\nupgrade finished in {duration:.0f} simulated seconds")
    print(f"requests: {recorder.succeeded} ok, {recorder.failed} failed "
          f"({recorder.success.overall_success_rate():.4%} success)")
    print(f"graceful migrations: "
          f"{app.orchestrator.executor.stats.graceful_migrations} "
          f"(each one: prepare_add -> prepare_drop/forward -> add -> "
          f"map update -> drop)")
    assert recorder.failed == 0, "graceful migration should drop nothing"
    print("no requests were dropped — the §4.3 protocol at work.")


if __name__ == "__main__":
    main()
