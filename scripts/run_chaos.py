#!/usr/bin/env python
"""Run the chaos scenario matrix and judge it with the trace oracle.

Each (scenario, arm) cell builds its own simulated cluster, executes the
scenario's fault timeline, and replays the journal through the
TraceChecker invariants plus the scenario's expectation bounds.  By
default every cell runs TWICE and the two journal digests must be
bit-identical — the determinism contract is part of the oracle, not a
separate test.

Examples::

    PYTHONPATH=src python scripts/run_chaos.py --list
    PYTHONPATH=src python scripts/run_chaos.py --all --seed 42 --check-trace
    PYTHONPATH=src python scripts/run_chaos.py \
        --scenario crash_burst_stop zk_session_churn --arms sm --serial
    PYTHONPATH=src python scripts/run_chaos.py --all --check-trace \
        --journal-dir chaos_journals
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import SCENARIOS, all_scenarios, load_spec  # noqa: E402
from repro.experiments import runner  # noqa: E402
from repro.obs.coverage import coverage_summary  # noqa: E402


def build_tasks(scenarios: List[str], arms: List[str], seed: int,
                repeats: int, capacity: int,
                journal_dir: str | None,
                parallel_regions: int = 0,
                file_specs: Dict[str, Dict[str, Any]] | None = None
                ) -> List[Dict[str, Any]]:
    tasks: List[Dict[str, Any]] = []
    for name in scenarios:
        for arm in arms:
            for attempt in range(1, repeats + 1):
                kwargs: Dict[str, Any] = {"scenario": name, "arm": arm,
                                          "seed": seed, "capacity": capacity}
                if file_specs and name in file_specs:
                    kwargs["spec"] = file_specs[name]
                if parallel_regions:
                    kwargs["parallel_regions"] = parallel_regions
                if journal_dir:
                    kwargs["journal_path"] = str(
                        Path(journal_dir)
                        / f"{name}.{arm}.seed{seed}.run{attempt}.jsonl")
                tasks.append({
                    "figure": "chaos",
                    "name": f"{name}:{arm}#{attempt}",
                    "fn": "repro.experiments.runner:chaos_task",
                    "kwargs": kwargs,
                })
    return tasks


def main() -> int:
    parser = argparse.ArgumentParser(
        description="chaos scenario sweep with trace-checked invariants")
    parser.add_argument("--all", action="store_true",
                        help="run every library scenario")
    parser.add_argument("--scenario", nargs="*", default=None,
                        help="specific scenario names to run, or "
                             "@path/to/spec.json for a file-defined "
                             "scenario (bare spec or fuzz corpus entry)")
    parser.add_argument("--arms", nargs="*", default=["sm", "baseline"],
                        choices=["sm", "baseline"],
                        help="ablation arms (default: both)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--no-repeat", action="store_true",
                        help="run each cell once (skips the digest-parity "
                             "half of the oracle)")
    parser.add_argument("--capacity", type=int, default=1 << 20,
                        help="journal ring capacity per run")
    parser.add_argument("--journal-dir", default=None,
                        help="write each run's raw journal (JSONL) here")
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (default: min(tasks, cpu_count))")
    parser.add_argument("--serial", action="store_true",
                        help="run cells inline in this process")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--parallel-regions", type=int, default=0,
                        metavar="N",
                        help="run each scenario's regions under the PDES "
                             "coordinator with N region threads (0 = off); "
                             "digest parity across repeats still applies")
    parser.add_argument("--check-trace", action="store_true",
                        help="fail (exit 1) on any invariant violation or "
                             "digest divergence")
    parser.add_argument("--list", action="store_true",
                        help="list the scenario library and exit")
    args = parser.parse_args()

    if args.list:
        for spec in all_scenarios():
            exp = spec.expectations
            bounds = []
            if exp.availability_bound is not None:
                bounds.append(f"avail<={exp.availability_bound:g}s")
            if exp.failover_bound is not None:
                bounds.append(f"failover<={exp.failover_bound:g}s")
            bounds.append(f"ready>={exp.final_ready_min:g}")
            print(f"{spec.name:36s} {spec.title}  [{', '.join(bounds)}]")
        return 0

    file_specs: Dict[str, Dict[str, Any]] = {}
    if args.all:
        scenarios = [spec.name for spec in all_scenarios()]
    elif args.scenario:
        scenarios = []
        for name in args.scenario:
            if name.startswith("@"):
                spec = load_spec(name[1:])
                file_specs[spec.name] = spec.to_dict()
                scenarios.append(spec.name)
            elif name in SCENARIOS:
                scenarios.append(name)
            else:
                parser.error(f"unknown scenario: {name!r} "
                             f"(known: {sorted(SCENARIOS)}; or pass "
                             f"@file.json)")
    else:
        parser.error("pick scenarios: --all or --scenario NAME [NAME ...]")

    if args.journal_dir:
        Path(args.journal_dir).mkdir(parents=True, exist_ok=True)

    repeats = 1 if args.no_repeat else 2
    tasks = build_tasks(scenarios, args.arms, args.seed, repeats,
                        args.capacity, args.journal_dir,
                        parallel_regions=args.parallel_regions,
                        file_specs=file_specs)
    report = runner.run_experiments(
        tasks, processes=args.processes, serial=args.serial,
        workers_per_task=max(1, args.parallel_regions))

    cells = report["figures"]["chaos"]["tasks"]
    failures = 0
    for name in scenarios:
        for arm in args.arms:
            headlines = [cells[f"{name}:{arm}#{attempt}"]["headline"]
                         for attempt in range(1, repeats + 1)]
            digests = {h["digest"] for h in headlines}
            violations = [v for h in headlines for v in h["violations"]]
            ok = len(digests) == 1 and not violations
            mark = "ok " if ok else "FAIL"
            first = headlines[0]
            print(f"{mark} {name:36s} {arm:8s} "
                  f"digest={sorted(digests)[0][:12]} "
                  f"faults={first['faults']} recovers={first['recovers']} "
                  f"ready={first['ready_fraction']:.2f} "
                  f"violations={len(violations)}")
            print(f"     coverage: "
                  f"{coverage_summary(frozenset(first.get('coverage', ())))}")
            if len(digests) > 1:
                failures += 1
                print(f"::error title=chaos determinism::{name}:{arm} "
                      f"journal digests diverged across repeats: "
                      f"{sorted(digests)}")
            for violation in violations:
                failures += 1
                print(f"::error title=chaos invariant::{name}:{arm} "
                      f"{violation['invariant']}: {violation['message']}")

    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"wrote {args.output}")
    total = len(scenarios) * len(args.arms)
    print(f"{total} scenario cells x{repeats}, "
          f"{report['sweep_wall_seconds']:.1f}s, {failures} failure(s)")
    if args.check_trace and failures:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
