#!/usr/bin/env python
"""Profile one parameterized solve: stage timers plus optional cProfile.

Runs the Fig 21 ZippyDB workload at a chosen scale point and prints the
solver's built-in per-stage profile (``SolveResult.profile``).  With
``--cprofile`` the solve additionally runs under :mod:`cProfile` for
function-level attribution of the same run.

Examples::

    PYTHONPATH=src python scripts/profile_solver.py
    PYTHONPATH=src python scripts/profile_solver.py --factor 5 --point 2 \
        --cprofile --limit 30
    PYTHONPATH=src python scripts/profile_solver.py --baseline --json
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.solver.local_search import SearchConfig  # noqa: E402
from repro.workloads.snapshots import (  # noqa: E402
    PAPER_SCALES,
    attach_zippydb_goals,
    scaled,
    zippydb_snapshot,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--factor", type=int, default=5,
                        help="downscale factor for the paper sizes "
                             "(default 5; 1 = full paper scale)")
    parser.add_argument("--point", type=int, default=2, choices=(0, 1, 2),
                        help="which scale point (0=75K/factor shards ... "
                             "2=375K/factor; default 2, the largest)")
    parser.add_argument("--seed", type=int, default=0,
                        help="snapshot and search rng seed (default 0)")
    parser.add_argument("--time-budget", type=float, default=300.0,
                        help="solver wall-clock budget in seconds")
    parser.add_argument("--baseline", action="store_true",
                        help="run without the §5.3 optimizations")
    parser.add_argument("--cprofile", action="store_true",
                        help="also run under cProfile and print the top "
                             "functions by cumulative time")
    parser.add_argument("--limit", type=int, default=20,
                        help="cProfile rows to print (default 20)")
    parser.add_argument("--json", action="store_true",
                        help="emit the profile snapshot as JSON instead of "
                             "the formatted table")
    args = parser.parse_args(argv)

    scale = scaled(PAPER_SCALES, factor=args.factor)[args.point]
    problem = zippydb_snapshot(scale, seed=args.seed)
    rebalancer = attach_zippydb_goals(problem)
    config = SearchConfig(time_budget=args.time_budget, rng_seed=args.seed)
    if args.baseline:
        config = config.without_optimizations()

    initial = rebalancer.violations()
    profiler = cProfile.Profile() if args.cprofile else None
    if profiler is not None:
        profiler.enable()
    result = rebalancer.solve(config)
    if profiler is not None:
        profiler.disable()
    final = rebalancer.violations()

    if args.json:
        payload = {
            "scale": scale.label,
            "arm": "baseline" if args.baseline else "optimized",
            "initial_violations": initial,
            "final_violations": final,
            "solve_time": result.solve_time,
            "moves": result.moves,
            "swaps": result.swaps,
            "evaluations": result.evaluations,
            "evaluations_per_second": result.evaluations_per_second,
            "timed_out": result.timed_out,
            "profile": result.profile.snapshot(),
        }
        print(json.dumps(payload, indent=2))
    else:
        arm = "baseline" if args.baseline else "optimized"
        print(f"{scale.label} ({arm}, seed={args.seed})")
        print(f"  violations: {initial} -> {final}"
              f"{'' if not result.timed_out else '  [TIMED OUT]'}")
        print(f"  solve time: {result.solve_time:.3f}s  "
              f"moves={result.moves} swaps={result.swaps} "
              f"evaluations={result.evaluations} "
              f"({result.evaluations_per_second:,.0f}/s)")
        print("  stage profile:")
        print(result.profile.format(total=result.solve_time, indent="    "))

    if profiler is not None:
        print()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("cumulative").print_stats(args.limit)

    return 0 if final <= initial else 1


if __name__ == "__main__":
    raise SystemExit(main())
