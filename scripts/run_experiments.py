#!/usr/bin/env python
"""Run the figure experiments (optionally in parallel) and write BENCH_sim.json.

Fans the independent experiment arms over a process pool (they share no
state — each builds its own engine and RNG substreams from an explicit
seed) and records per-figure wall-clock and events/second.  With
``--baseline`` the report also embeds the pre-optimization numbers and
per-figure speedups.

Examples::

    PYTHONPATH=src python scripts/run_experiments.py
    PYTHONPATH=src python scripts/run_experiments.py --smoke --serial
    PYTHONPATH=src python scripts/run_experiments.py \
        --figures fig17 fig19 --processes 4 --output BENCH_sim.json \
        --baseline benchmarks/baseline_sim.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import runner  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        description="parallel experiment sweep -> BENCH_sim.json")
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figures to run (default: all)")
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (default: min(tasks, cpu_count))")
    parser.add_argument("--serial", action="store_true",
                        help="run tasks inline in this process")
    parser.add_argument("--smoke", action="store_true",
                        help="use the scaled-down task set (CI-friendly)")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to embed and compare against")
    args = parser.parse_args()

    tasks = runner.SMOKE_TASKS if args.smoke else runner.DEFAULT_TASKS
    if args.figures:
        known = {task["figure"] for task in tasks}
        unknown = set(args.figures) - known
        if unknown:
            parser.error(f"unknown figures: {sorted(unknown)} "
                         f"(known: {sorted(known)})")
        tasks = [task for task in tasks if task["figure"] in args.figures]

    report = runner.run_experiments(tasks, processes=args.processes,
                                    serial=args.serial)
    if args.baseline:
        runner.attach_baseline(report, args.baseline)

    text = json.dumps(report, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
