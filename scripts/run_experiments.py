#!/usr/bin/env python
"""Run the figure experiments (optionally in parallel) and write BENCH_sim.json.

Fans the independent experiment arms over a process pool (they share no
state — each builds its own engine and RNG substreams from an explicit
seed) and records per-figure wall-clock and events/second.  With
``--baseline`` the report also embeds the pre-optimization numbers and
per-figure speedups.

Examples::

    PYTHONPATH=src python scripts/run_experiments.py
    PYTHONPATH=src python scripts/run_experiments.py --smoke --serial
    PYTHONPATH=src python scripts/run_experiments.py \
        --figures fig17 fig19 --processes 4 --output BENCH_sim.json \
        --baseline benchmarks/baseline_sim.json
    PYTHONPATH=src python scripts/run_experiments.py --smoke \
        --trace-figure fig17:sm --trace trace_fig17.json \
        --journal trace_fig17.jsonl --check-trace
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import runner  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(
        description="parallel experiment sweep -> BENCH_sim.json")
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figures to run (default: all)")
    parser.add_argument("--processes", type=int, default=None,
                        help="pool size (default: min(tasks, cpu_count))")
    parser.add_argument("--serial", action="store_true",
                        help="run tasks inline in this process")
    parser.add_argument("--smoke", action="store_true",
                        help="use the scaled-down task set (CI-friendly)")
    parser.add_argument("--traffic", choices=("event", "fluid"),
                        default="event",
                        help="traffic engine for the request-driven "
                             "figures (fig17/fig18): per-request events "
                             "or the hybrid fluid engine")
    parser.add_argument("--parallel-regions", type=int, default=0,
                        metavar="N",
                        help="run each region's event engine under the "
                             "conservative PDES coordinator (0 = off, "
                             "1 = windowed serial, N = thread workers); "
                             "the process pool is shrunk so pool x N "
                             "does not oversubscribe cores")
    parser.add_argument("--output", default=None,
                        help="write the JSON report to this path")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to embed and compare against")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="run ONE figure traced and write a Chrome/"
                             "Perfetto trace JSON to this path")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="also write the raw journal as JSONL "
                             "(requires --trace)")
    parser.add_argument("--trace-figure", default="fig17",
                        metavar="FIG[:ARM]",
                        help="which task to trace, e.g. fig17 or fig17:sm "
                             "(default: fig17)")
    parser.add_argument("--check-trace", action="store_true",
                        help="fail (exit 1) if the TraceChecker finds any "
                             "invariant violation in the trace")
    args = parser.parse_args()

    tasks = runner.SMOKE_TASKS if args.smoke else runner.DEFAULT_TASKS
    if args.traffic != "event":
        tasks = runner.with_traffic(tasks, args.traffic)
    if args.parallel_regions > 0:
        tasks = runner.with_parallel_regions(tasks, args.parallel_regions)

    if args.trace:
        task = runner.select_task(tasks, args.trace_figure)
        result = runner.run_traced(task, args.trace,
                                   journal_path=args.journal)
        print(json.dumps(result, indent=1, sort_keys=True))
        violations = result["trace"]["violations"]
        for violation in violations:
            print(f"::error title=trace invariant::"
                  f"{violation['invariant']}: {violation['message']}")
        if args.check_trace and violations:
            return 1
        return 0

    if args.figures:
        known = {task["figure"] for task in tasks}
        unknown = set(args.figures) - known
        if unknown:
            parser.error(f"unknown figures: {sorted(unknown)} "
                         f"(known: {sorted(known)})")
        tasks = [task for task in tasks if task["figure"] in args.figures]

    report = runner.run_experiments(
        tasks, processes=args.processes, serial=args.serial,
        workers_per_task=max(1, args.parallel_regions))
    if args.baseline:
        runner.attach_baseline(report, args.baseline)

    text = json.dumps(report, indent=1, sort_keys=True)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
