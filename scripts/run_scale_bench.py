#!/usr/bin/env python
"""Run the control-plane scale benchmark (Figs 15/16 regime).

Sweeps shard counts x dirty counts x mini-SM pool sizes, then merges the
result into BENCH_sim.json as the ``scale`` section (the rest of the
report — figures, baseline, totals — is left untouched).  BENCH_sim.json
is the single canonical bench report; CI uploads it whole.

    PYTHONPATH=src python scripts/run_scale_bench.py              # full sweep
    PYTHONPATH=src python scripts/run_scale_bench.py --smoke      # CI-sized
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.scale_bench import (  # noqa: E402
    DEFAULT_DIRTY_COUNTS,
    DEFAULT_MINI_SM_COUNTS,
    DEFAULT_SHARD_COUNTS,
    run_sweep,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, nargs="+",
                        default=list(DEFAULT_SHARD_COUNTS),
                        help="shard counts to sweep")
    parser.add_argument("--dirty", type=int, nargs="+",
                        default=list(DEFAULT_DIRTY_COUNTS),
                        help="shards mutated between steady-state publishes")
    parser.add_argument("--mini-sms", type=int, nargs="+",
                        default=list(DEFAULT_MINI_SM_COUNTS),
                        help="mini-SM pool sizes to bin-pack into")
    parser.add_argument("--rounds", type=int, default=30,
                        help="timed publishes per dirty count")
    parser.add_argument("--lookups", type=int, default=50_000,
                        help="frontend route lookups per point")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="small-N preset for CI (one 10^4 point)")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="report to merge the scale section into")
    args = parser.parse_args()

    if args.smoke:
        args.shards = [10_000]
        args.rounds = min(args.rounds, 10)
        args.lookups = min(args.lookups, 20_000)

    section = run_sweep(args.shards, dirty_counts=tuple(args.dirty),
                        mini_sm_counts=tuple(args.mini_sms),
                        rounds=args.rounds, route_lookups=args.lookups,
                        seed=args.seed)
    section["smoke"] = bool(args.smoke)

    for point in section["points"]:
        best = max(s["publishes_per_sec"] for s in point["publish_sweep"])
        print(f"shards={point['shards']:>9,}  "
              f"publish(dirty=1)={best:>10,.0f}/s  "
              f"full={point['full_map_bytes']:>12,}B  "
              f"delta(min)={point['publish_sweep'][0]['delta_bytes']:>8,}B  "
              f"routes={point['frontend_routes_per_sec']:>12,.0f}/s  "
              f"({point['frontend_speedup_vs_linear']:,.0f}x linear)")

    report = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            report = json.load(handle)
    report["scale"] = section
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"merged scale section into {args.output} "
          f"({section['wall_seconds']}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
