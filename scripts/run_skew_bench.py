#!/usr/bin/env python
"""Run the hot-key skew benchmark (SM solver vs §2.2.1 baselines).

Runs the three ``skew_lb`` arms — SM's load-based solver, consistent
hashing, static modulo sharding — under a Zipfian point-read workload
plus a scatter-gather workload with a mid-run hot-set rotation, then
merges the result into BENCH_sim.json as the ``skew`` section (the rest
of the report is left untouched).

Two hard gates run inside this script (the perf-regression gate adds a
soft SM-advantage floor on top):

* determinism — every arm is run twice at the same seed and the journal
  digests must be bit-identical;
* trace cleanliness — the TraceChecker must report zero violations for
  every arm.

    PYTHONPATH=src python scripts/run_skew_bench.py              # bench scale
    PYTHONPATH=src python scripts/run_skew_bench.py --smoke      # CI-sized
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.skew_lb import (  # noqa: E402
    ARMS,
    SkewParams,
    format_report,
    run_arm,
)

SMOKE = SkewParams(servers=6, shards=24, duration=240.0, settle=40.0,
                   warmup=30.0, request_rate=60.0, scatter_rate=5.0,
                   service_time=0.03)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skew", type=float, default=None,
                        help="Zipf exponent override (default: per scale)")
    parser.add_argument("--smoke", action="store_true",
                        help="small-N preset for CI")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="report to merge the skew section into")
    args = parser.parse_args()

    params = SMOKE if args.smoke else SkewParams()
    if args.skew is not None:
        params.skew = args.skew

    start = time.monotonic()
    results = {}
    failures = []
    for arm in ARMS:
        first = run_arm(arm, params, args.seed)
        second = run_arm(arm, params, args.seed)
        if first.digest != second.digest:
            failures.append(f"{arm}: digests differ across same-seed runs "
                            f"({first.digest} vs {second.digest})")
        if first.violations:
            failures.append(f"{arm}: {first.violations} TraceChecker "
                            f"violation(s)")
        results[arm] = first
        print(f"{arm:<16} p99={first.p99 * 1e3:8.1f}ms  "
              f"imbalance={first.imbalance:5.2f}  moves={first.moves:4d}  "
              f"digest={first.digest[:16]}")
    wall = time.monotonic() - start

    print(format_report(results))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    sm = results["sm"]
    baseline_p99 = min(results[a].p99 for a in ARMS if a != "sm")
    baseline_imb = min(results[a].imbalance for a in ARMS if a != "sm")
    section = {
        "smoke": bool(args.smoke),
        "seed": args.seed,
        "params": {
            "servers": params.servers,
            "shards": params.shards,
            "skew": params.skew,
            "duration": params.duration,
            "request_rate": params.request_rate,
            "scatter_rate": params.scatter_rate,
            "fanout": params.fanout,
            "service_time": params.service_time,
        },
        "arms": {arm: result.to_dict() for arm, result in results.items()},
        # best (lowest-P99 / least-imbalanced) baseline vs SM: > 1 means
        # SM wins even against the stronger baseline.
        "sm_p99_advantage": round(baseline_p99 / sm.p99, 3) if sm.p99 else 0.0,
        "sm_imbalance_advantage": round(baseline_imb / sm.imbalance, 3)
        if sm.imbalance else 0.0,
        "deterministic": True,
        "wall_seconds": round(wall, 2),
    }

    report = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            report = json.load(handle)
    report["skew"] = section
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"merged skew section into {args.output} "
          f"(sm p99 advantage {section['sm_p99_advantage']}x, "
          f"{section['wall_seconds']}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
