#!/usr/bin/env python
"""Benchmark the hybrid fluid traffic engine -> BENCH_sim.json `fluid` section.

Three measurements:

1. **Event-mode Figure 18** at its default scale — the wall-clock bar the
   fluid engine must beat while modelling vastly more traffic.
2. **Fluid-mode Figure 18** at the same scale — the like-for-like speedup
   and the headline parity deltas (error rate, upgrades).
3. **The 10M-user scenario** (:mod:`repro.experiments.fluid_scale`) —
   ten million users of diurnal multi-region traffic; publishes simulated
   users per wall second, the acceptance headline.

The section is merged into BENCH_sim.json (the rest of the report is
left untouched, same idiom as the ``scale`` section).  BENCH_sim.json is
the single canonical bench report; CI uploads it whole.

    PYTHONPATH=src python scripts/run_fluid_bench.py           # full
    PYTHONPATH=src python scripts/run_fluid_bench.py --smoke   # CI-sized
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import fig18_production_upgrades, fluid_scale  # noqa: E402


def _timed_fig18(**kwargs):
    start = time.perf_counter()
    result = fig18_production_upgrades.run(**kwargs)
    wall = time.perf_counter() - start
    return result, wall


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down preset for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="report to merge the fluid section into")
    args = parser.parse_args()

    if args.smoke:
        fig18_kwargs = dict(shards=120, servers=10, day_length=1_200.0,
                            days=1, seed=args.seed)
        scale_kwargs = dict(users=1_000_000, shards=200,
                            servers_per_region=8, day_length=1_200.0,
                            days=1, epoch=15.0, seed=args.seed)
    else:
        fig18_kwargs = dict(shards=400, servers=20, day_length=3_600.0,
                            days=2, seed=args.seed)
        scale_kwargs = dict(seed=args.seed)

    event18, event_wall = _timed_fig18(traffic="event", **fig18_kwargs)
    fluid18, fluid_wall = _timed_fig18(traffic="fluid", **fig18_kwargs)
    print(f"fig18 event: {event_wall:.2f}s  err={event18.overall_error_rate:.5f}  "
          f"upgrades={event18.upgrades_run}")
    print(f"fig18 fluid: {fluid_wall:.2f}s  err={fluid18.overall_error_rate:.5f}  "
          f"upgrades={fluid18.upgrades_run}  "
          f"({event_wall / fluid_wall if fluid_wall > 0 else 0.0:.1f}x)")

    scale = fluid_scale.run(**scale_kwargs)
    print(fluid_scale.format_report(scale))

    section = {
        "smoke": bool(args.smoke),
        "fig18": {
            "event_wall_seconds": event_wall,
            "fluid_wall_seconds": fluid_wall,
            "speedup": event_wall / fluid_wall if fluid_wall > 0 else 0.0,
            "event_error_rate": event18.overall_error_rate,
            "fluid_error_rate": fluid18.overall_error_rate,
            "error_rate_delta": abs(fluid18.overall_error_rate
                                    - event18.overall_error_rate),
            "event_upgrades": event18.upgrades_run,
            "fluid_upgrades": fluid18.upgrades_run,
        },
        "scale": {
            "users": scale.users,
            "regions": scale.regions,
            "shards": scale.shards,
            "servers": scale.servers,
            "sim_seconds": scale.sim_seconds,
            "wall_seconds": scale.wall_seconds,
            "users_per_sec": scale.users_per_sec,
            "sim_rate": scale.sim_rate,
            "arrivals": scale.arrivals,
            "availability": scale.availability,
            "mean_latency_ms": scale.mean_latency_ms,
            "p99_latency_ms": scale.p99_latency_ms,
            "max_utilization": scale.max_utilization,
            "shard_moves": scale.shard_moves,
            "upgrades_run": scale.upgrades_run,
            "epochs": scale.epochs,
            "flows": scale.flows,
            "delta_reprices": scale.delta_reprices,
            "full_reprices": scale.full_reprices,
            # The acceptance bar: finish under the event-mode fig18 wall.
            "under_event_fig18_wall": scale.wall_seconds < event_wall,
        },
    }

    report = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            report = json.load(handle)
    report["fluid"] = section
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"merged fluid section into {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
