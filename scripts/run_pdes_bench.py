#!/usr/bin/env python
"""Benchmark region-parallel PDES -> BENCH_sim.json ``pdes`` section.

Two hard parity gates and one timed measurement:

1. **Figure 17 parity (hard).** The single-region figure must be
   *bit-identical* under ``--parallel-regions``: same headline, same
   journal digest.  (Single-region PDES collapses to the plain engine
   loop — this gate pins that contract.)
2. **3-region scenario parity (hard).** The
   :mod:`repro.experiments.pdes_scale` queue-service scenario must
   produce the same deterministic headline serial vs windowed, and
   identical merged-journal digests for ``workers=1`` vs ``workers=N``
   (thread scheduling must not leak into simulation results).
3. **Speedup (soft).** Wall-clock of the serial run vs ``workers=N``.
   Published as ``speedup_vs_serial``; gated warn-only by
   ``check_perf_regression.py --pdes-min-speedup`` because region
   threads share the GIL — scaling needs free cores.

The section is merged into BENCH_sim.json (the rest of the report is
left untouched, same idiom as the ``scale``/``fluid`` sections).
BENCH_sim.json is the single canonical bench report; CI uploads it
whole.  Parity failures exit non-zero.

    PYTHONPATH=src python scripts/run_pdes_bench.py           # full
    PYTHONPATH=src python scripts/run_pdes_bench.py --smoke   # CI-sized
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments import pdes_scale, runner  # noqa: E402
from repro.obs import Observability, use  # noqa: E402


def _traced(task):
    """Run one runner task under observability; (headline, digest)."""
    obs = Observability(capacity=1 << 20)
    with use(obs):
        result = runner.run_task(task)
    return result["headline"], obs.merged_digest()


def _scale_traced(kwargs, parallel_regions):
    """Run the 3-region scenario under observability; (headline, digest)."""
    obs = Observability(capacity=1 << 20)
    with use(obs):
        result = pdes_scale.run(**kwargs, parallel_regions=parallel_regions)
    return result.headline(), obs.merged_digest()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="scaled-down preset for CI")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=3,
                        help="region-thread count for the parallel arm "
                             "(default 3: one per region)")
    parser.add_argument("--output", default="BENCH_sim.json",
                        help="report to merge the pdes section into")
    args = parser.parse_args()

    if args.smoke:
        fig17_task = runner.select_task(runner.SMOKE_TASKS, "fig17:sm")
        scale_kwargs = dict(shards=120, servers_per_region=8,
                            day_length=600.0, days=1, seed=args.seed)
    else:
        fig17_task = runner.select_task(runner.DEFAULT_TASKS, "fig17:sm")
        scale_kwargs = dict(seed=args.seed)

    # Gate 1: fig17 serial vs --parallel-regions, bit-identical.
    serial_head, serial_digest = _traced(fig17_task)
    pdes_task, = runner.with_parallel_regions([fig17_task], args.workers)
    pdes_head, pdes_digest = _traced(pdes_task)
    fig17_headline_match = serial_head == pdes_head
    fig17_digest_match = serial_digest == pdes_digest
    print(f"fig17 parity: headline={'ok' if fig17_headline_match else 'FAIL'}"
          f"  digest={'ok' if fig17_digest_match else 'FAIL'}"
          f"  ({serial_digest} vs {pdes_digest})")

    # Gate 2: 3-region scenario — headline parity serial vs windowed,
    # digest parity workers=1 vs workers=N.
    w1_head, w1_digest = _scale_traced(scale_kwargs, 1)
    wn_head, wn_digest = _scale_traced(scale_kwargs, args.workers)
    scale_workers_headline_match = w1_head == wn_head
    scale_workers_digest_match = w1_digest == wn_digest
    print(f"scale parity (w1 vs w{args.workers}): "
          f"headline={'ok' if scale_workers_headline_match else 'FAIL'}"
          f"  digest={'ok' if scale_workers_digest_match else 'FAIL'}"
          f"  ({w1_digest} vs {wn_digest})")

    # Timed arms (no observability — measure the engine, not the tracer).
    serial = pdes_scale.run(**scale_kwargs)
    parallel = pdes_scale.run(**scale_kwargs, parallel_regions=args.workers)
    scale_serial_headline_match = serial.headline() == w1_head
    speedup = (serial.wall_seconds / parallel.wall_seconds
               if parallel.wall_seconds > 0 else 0.0)
    print(f"scale parity (serial vs windowed): "
          f"headline={'ok' if scale_serial_headline_match else 'FAIL'}")
    print(pdes_scale.format_report(parallel))
    print(f"speedup vs serial: {speedup:.2f}x "
          f"(serial {serial.wall_seconds:.2f}s, "
          f"workers={args.workers} {parallel.wall_seconds:.2f}s)")

    section = {
        "smoke": bool(args.smoke),
        "workers": args.workers,
        "parity": {
            "fig17_headline_match": fig17_headline_match,
            "fig17_digest_match": fig17_digest_match,
            "scale_headline_match_serial_vs_windowed":
                scale_serial_headline_match,
            "scale_headline_match_w1_vs_wN": scale_workers_headline_match,
            "scale_digest_match_w1_vs_wN": scale_workers_digest_match,
        },
        "scale": {
            "workers": args.workers,
            "serial_wall_seconds": serial.wall_seconds,
            "parallel_wall_seconds": parallel.wall_seconds,
            "speedup_vs_serial": speedup,
            "requests_sent": parallel.requests_sent,
            "events_processed": parallel.events_processed,
            "windows": parallel.windows,
            "deferred_events": parallel.deferred_events,
            "clamped_events": parallel.clamped_events,
        },
    }

    report = {}
    if os.path.exists(args.output):
        with open(args.output) as handle:
            report = json.load(handle)
    report["pdes"] = section
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"merged pdes section into {args.output}")

    if not all(section["parity"].values()):
        failed = [k for k, ok in section["parity"].items() if not ok]
        print(f"PARITY FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
