#!/usr/bin/env python
"""Coverage-guided chaos fuzzing: search, replay, distill, benchmark.

Runs the :mod:`repro.chaos.fuzz` engine over the fault-action
vocabulary.  The search is deterministic — ``(seed, budget, config)``
fully decides which specs run under which run-seeds, so
``--determinism-check`` (run the whole search twice, compare the corpus
coverage-key set and every per-spec journal digest) is cheap insurance
rather than a flaky hope.

Examples::

    PYTHONPATH=src python scripts/run_fuzz.py --budget 200 --seed 42 \
        --corpus-dir fuzz_corpus --output BENCH_sim.json
    PYTHONPATH=src python scripts/run_fuzz.py --budget 120 \
        --determinism-check
    PYTHONPATH=src python scripts/run_fuzz.py \
        --replay tests/fixtures/chaos_corpus/*.json
    PYTHONPATH=src python scripts/run_fuzz.py --budget 300 \
        --distill 4 --distill-dir tests/fixtures/chaos_corpus
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.chaos import load_spec  # noqa: E402
from repro.chaos.fuzz import (Corpus, CorpusEntry, FuzzConfig,  # noqa: E402
                              FuzzEngine, evaluate_spec, shrink)
from repro.obs.coverage import coverage_summary  # noqa: E402


def replay(paths, arm: str, capacity: int) -> int:
    """Re-run spec/corpus-entry files; verify recorded digests match."""
    failures = 0
    for path in paths:
        spec = load_spec(path)
        data = json.loads(Path(path).read_text())
        meta = data.get("meta", {}) if isinstance(data, dict) else {}
        seed = int(meta.get("run_seed", 0))
        result = evaluate_spec(spec, arm, seed, capacity)
        digest_ok = (not meta.get("digest")
                     or meta["digest"] == result["digest"])
        mark = "ok " if digest_ok and not result["violations"] else "FAIL"
        print(f"{mark} {Path(path).name}: digest={result['digest'][:12]} "
              f"seed={seed} "
              f"{coverage_summary(frozenset(result['coverage']))}")
        if not digest_ok:
            failures += 1
            print(f"::error title=fuzz replay::{path}: journal digest "
                  f"{result['digest']} != recorded {meta['digest']}")
        for violation in result["violations"]:
            failures += 1
            print(f"::error title=fuzz replay::{path}: "
                  f"{violation['invariant']}: {violation['message']}")
    return failures


def distill(engine_result, count: int, directory: Path,
            arm: str, capacity: int, shrink_evals: int) -> list:
    """Shrink the highest-novelty corpus entries to minimal specs that
    still produce their novel coverage keys, and save them as corpus
    entry files (the checked-in regression fixtures)."""
    from repro.chaos.fuzz.engine import run_seed_for  # noqa: E402

    ranked = sorted(engine_result.corpus.entries,
                    key=lambda e: (-len(e.novel), e.fingerprint))
    saved = []
    out = Corpus()
    for entry in ranked[:count]:
        target = entry.novel

        def keeps_coverage(spec) -> bool:
            result = evaluate_spec(spec, arm, entry.run_seed, capacity)
            return target <= frozenset(result["coverage"])

        minimal, _spent = shrink(entry.spec, keeps_coverage,
                                 max_evals=shrink_evals)
        from dataclasses import replace

        from repro.chaos import spec_fingerprint
        fingerprint = spec_fingerprint(minimal)
        minimal = replace(minimal, name=f"fuzz_{fingerprint[:12]}",
                          title=f"distilled coverage repro "
                                f"{fingerprint[:12]}")
        final = evaluate_spec(minimal, arm, entry.run_seed, capacity)
        if not target <= frozenset(final["coverage"]):
            print(f"::warning title=fuzz distill::{fingerprint[:12]}: "
                  f"novel keys not fully preserved after rename")
        out.entries.append(CorpusEntry(
            spec=minimal, fingerprint=fingerprint,
            run_seed=entry.run_seed, digest=final["digest"],
            coverage=frozenset(final["coverage"]), novel=target,
            violated=frozenset(v["invariant"]
                               for v in final["violations"]),
            parent=entry.fingerprint, op="shrink"))
        saved.append(minimal)
    paths = out.save(directory)
    for path, entry in zip(paths, out.entries):
        print(f"distilled {path} ({len(entry.spec.actions)} action(s), "
              f"{len(entry.novel)} novel key(s))")
    return paths


def main() -> int:
    parser = argparse.ArgumentParser(
        description="coverage-guided chaos scenario fuzzing")
    parser.add_argument("--budget", type=int, default=200,
                        help="candidate executions (runs, not seconds — "
                             "keeps the search deterministic)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--batch", type=int, default=8,
                        help="candidates generated per round")
    parser.add_argument("--arm", default="sm", choices=["sm", "baseline"])
    parser.add_argument("--capacity", type=int, default=1 << 20)
    parser.add_argument("--processes", type=int, default=0,
                        help="pool size for batch evaluation "
                             "(0/1 = serial)")
    parser.add_argument("--corpus-dir", default=None,
                        help="save every admitted corpus entry here")
    parser.add_argument("--no-shrink", dest="shrink", action="store_false",
                        help="skip delta-debugging violating timelines")
    parser.add_argument("--shrink-evals", type=int, default=48,
                        help="max re-runs per shrink")
    parser.add_argument("--replay", nargs="*", default=None,
                        metavar="SPEC.json",
                        help="re-run spec/corpus files and verify "
                             "recorded digests instead of searching")
    parser.add_argument("--distill", type=int, default=0, metavar="N",
                        help="after the search, shrink the N highest-"
                             "novelty entries to minimal coverage repros")
    parser.add_argument("--distill-dir", default="fuzz_distilled",
                        help="where --distill writes its entries")
    parser.add_argument("--determinism-check", action="store_true",
                        help="run the search twice; fail on any "
                             "coverage-set or digest divergence")
    parser.add_argument("--output", default=None,
                        help="merge a `fuzz` section into this "
                             "BENCH_sim.json")
    args = parser.parse_args()

    if args.replay is not None:
        if not args.replay:
            parser.error("--replay needs at least one spec file")
        failures = replay(args.replay, args.arm, args.capacity)
        print(f"replayed {len(args.replay)} spec(s), "
              f"{failures} failure(s)")
        return 1 if failures else 0

    config = FuzzConfig(seed=args.seed, budget=args.budget,
                        batch=args.batch, arm=args.arm,
                        capacity=args.capacity,
                        shrink_violations=args.shrink,
                        shrink_evals=args.shrink_evals,
                        processes=args.processes)
    start = time.perf_counter()
    result = FuzzEngine(config).run()
    wall = time.perf_counter() - start
    stats = result.stats
    keys = result.coverage_set()
    print(f"fuzz: {stats.executed} specs in {wall:.1f}s "
          f"({stats.executed / wall:.1f} specs/s), corpus "
          f"{len(result.corpus)}, {coverage_summary(keys)}, "
          f"{stats.violating} violating, coverage digest "
          f"{result.coverage_digest()[:12]}")

    failures = 0
    for entry in result.violations:
        failures += 1
        print(f"::error title=fuzz violation::{entry.spec.name} "
              f"(seed {entry.run_seed}) breaks "
              f"{sorted(entry.violated)}: "
              f"{[(a.kind, a.at) for a in entry.spec.actions]}")

    if args.determinism_check:
        second = FuzzEngine(config).run()
        if second.coverage_set() != keys:
            failures += 1
            diff = sorted(second.coverage_set() ^ keys)
            print(f"::error title=fuzz determinism::coverage-key set "
                  f"diverged across identical runs: {diff}")
        mismatched = {fp: (d, second.digests().get(fp))
                      for fp, d in result.digests().items()
                      if second.digests().get(fp) != d}
        if mismatched:
            failures += 1
            print(f"::error title=fuzz determinism::journal digests "
                  f"diverged for {sorted(mismatched)[:4]}...")
        if second.coverage_set() == keys and not mismatched:
            print(f"determinism check: coverage set and all "
                  f"{len(result.digests())} digests identical across "
                  f"two searches")

    if args.corpus_dir:
        paths = result.corpus.save(args.corpus_dir)
        print(f"saved {len(paths)} corpus entries to {args.corpus_dir}")
    if result.violations and args.corpus_dir:
        viol = Corpus()
        viol.entries = list(result.violations)
        viol.save(Path(args.corpus_dir) / "violations")

    if args.distill:
        distill(result, args.distill, Path(args.distill_dir), args.arm,
                args.capacity, args.shrink_evals)

    if args.output:
        path = Path(args.output)
        report = (json.loads(path.read_text()) if path.exists() else {})
        report["fuzz"] = {
            "seed": args.seed,
            "budget": args.budget,
            "arm": args.arm,
            "specs_executed": stats.executed,
            "wall_seconds": wall,
            "specs_per_sec": stats.executed / wall if wall > 0 else 0.0,
            "corpus_size": len(result.corpus),
            "distinct_coverage_keys": len(keys),
            "coverage_keys_per_100_runs": (100.0 * len(keys)
                                           / max(1, stats.executed)),
            "violations_found": stats.violating,
            "duplicates": stats.duplicates,
            "shrink_evals": stats.shrink_evals,
            "coverage_digest": result.coverage_digest(),
        }
        path.write_text(json.dumps(report, indent=1, sort_keys=True)
                        + "\n")
        print(f"wrote fuzz section to {args.output}")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
