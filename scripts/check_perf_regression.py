#!/usr/bin/env python
"""Soft perf-regression gate: compare BENCH_sim.json against the baseline.

Compares per-figure ``events_per_sec`` in a fresh experiment report with
the checked-in pre-optimization baseline and warns (GitHub-annotation
style) when a figure's throughput regressed by more than the threshold.

Soft by design: CI machines are noisy and the smoke sweep runs scaled-
down tasks, so a regression prints ``::warning::`` lines and the script
still exits 0.  Pass ``--hard`` to turn warnings into a non-zero exit
for local gating.

Usage::

    PYTHONPATH=src python scripts/check_perf_regression.py \
        --report BENCH_sim.json --baseline benchmarks/baseline_sim.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(report: dict, baseline: dict, threshold: float) -> list:
    """[(figure, baseline events/s, new events/s, ratio), ...] regressions."""
    regressions = []
    base_figures = baseline.get("figures", {})
    for figure, stats in sorted(report.get("figures", {}).items()):
        base = base_figures.get(figure)
        if not base:
            continue
        old = base.get("events_per_sec")
        new = stats.get("events_per_sec")
        if not old or not new:
            continue
        if new < old * (1.0 - threshold):
            regressions.append((figure, old, new, new / old))
    return regressions


def check_scale(report: dict, min_publish_ops: float,
                min_frontend_speedup: float) -> list:
    """Soft floors for the control-plane scale section.

    Checks every swept point's best-case (smallest dirty count) publish
    throughput and the frontend's indexed-vs-linear speedup.  Returns
    GitHub-annotation warning strings.
    """
    warnings = []
    section = report.get("scale")
    if not section:
        return ["::warning title=scale gate::report has no `scale` section "
                "(run scripts/run_scale_bench.py)"]
    for point in section.get("points", []):
        shards = point.get("shards", 0)
        sweep = point.get("publish_sweep", [])
        if sweep:
            best = max(s.get("publishes_per_sec", 0.0) for s in sweep)
            if best < min_publish_ops:
                warnings.append(
                    f"::warning title=scale gate::{shards:,} shards: "
                    f"control-plane publish {best:,.0f} ops/s below floor "
                    f"{min_publish_ops:,.0f}")
        speedup = point.get("frontend_speedup_vs_linear", 0.0)
        if speedup < min_frontend_speedup:
            warnings.append(
                f"::warning title=scale gate::{shards:,} shards: frontend "
                f"speedup {speedup:,.1f}x below floor "
                f"{min_frontend_speedup:,.1f}x")
    return warnings


def check_fluid(report: dict, min_users_per_sec: float) -> list:
    """Soft floor for the hybrid fluid engine's headline throughput.

    Gates the ``fluid`` section's 10M-user scenario: simulated users per
    wall second must clear the floor, and the scenario must have finished
    under the event-mode fig18 wall measured in the same run.  Returns
    GitHub-annotation warning strings.
    """
    warnings = []
    section = report.get("fluid")
    if not section:
        return ["::warning title=fluid gate::report has no `fluid` section "
                "(run scripts/run_fluid_bench.py)"]
    scale = section.get("scale", {})
    users_per_sec = scale.get("users_per_sec", 0.0)
    if users_per_sec < min_users_per_sec:
        warnings.append(
            f"::warning title=fluid gate::{scale.get('users', 0):,} users: "
            f"{users_per_sec:,.0f} users/s below floor "
            f"{min_users_per_sec:,.0f}")
    if not scale.get("under_event_fig18_wall", False):
        warnings.append(
            f"::warning title=fluid gate::10M-user scenario took "
            f"{scale.get('wall_seconds', 0.0):.2f}s — not under the "
            f"event-mode fig18 wall "
            f"({section.get('fig18', {}).get('event_wall_seconds', 0.0):.2f}s)")
    return warnings


def check_pdes(report: dict, min_speedup: float) -> list:
    """Soft floor for the region-parallel PDES speedup.

    Gates the ``pdes`` section's 3-region benchmark scenario: wall-clock
    speedup of ``workers=N`` over the single-process serial run must
    clear the floor.  Soft by necessity, not just CI noise: region
    threads share the GIL, so pure-Python runs only scale on runners
    with free cores — the parity flags (also re-checked here) are the
    hard part of the gate and fail the bench script itself.  Returns
    GitHub-annotation warning strings.
    """
    warnings = []
    section = report.get("pdes")
    if not section:
        return ["::warning title=pdes gate::report has no `pdes` section "
                "(run scripts/run_pdes_bench.py)"]
    parity = section.get("parity", {})
    for name, ok in sorted(parity.items()):
        if not ok:
            warnings.append(
                f"::warning title=pdes gate::parity check `{name}` failed "
                f"(serial and parallel runs disagree)")
    scale = section.get("scale", {})
    speedup = scale.get("speedup_vs_serial", 0.0)
    if speedup < min_speedup:
        warnings.append(
            f"::warning title=pdes gate::workers={scale.get('workers', 0)} "
            f"speedup {speedup:.2f}x below floor {min_speedup:.2f}x "
            f"(serial {scale.get('serial_wall_seconds', 0.0):.2f}s vs "
            f"parallel {scale.get('parallel_wall_seconds', 0.0):.2f}s; "
            f"GIL-bound on runners without free cores)")
    return warnings


def check_fuzz(report: dict, min_specs_per_sec: float) -> list:
    """Soft floor for the chaos fuzzer's execution throughput.

    Gates the ``fuzz`` section: candidate scenarios executed per wall
    second must clear the floor (the whole search degenerates if a
    single run gets slow), and a search that found violations is
    surfaced here too — the fuzz job itself already failed in that
    case, this keeps the signal in the perf summary.  Returns
    GitHub-annotation warning strings.
    """
    warnings = []
    section = report.get("fuzz")
    if not section:
        return ["::warning title=fuzz gate::report has no `fuzz` section "
                "(run scripts/run_fuzz.py --output)"]
    specs_per_sec = section.get("specs_per_sec", 0.0)
    if specs_per_sec < min_specs_per_sec:
        warnings.append(
            f"::warning title=fuzz gate::"
            f"{section.get('specs_executed', 0)} specs at "
            f"{specs_per_sec:,.1f} specs/s below floor "
            f"{min_specs_per_sec:,.1f}")
    if section.get("violations_found", 0):
        warnings.append(
            f"::warning title=fuzz gate::search found "
            f"{section['violations_found']} invariant-violating "
            f"timeline(s) — see the fuzz job log")
    return warnings


def check_skew(report: dict, min_sm_advantage: float) -> list:
    """Soft floor for SM's win in the hot-key skew benchmark.

    Gates the ``skew`` section: the SM arm's P99 latency must beat the
    *better* of the two baseline arms (consistent hashing, static
    sharding) by at least ``min_sm_advantage`` (e.g. 1.5 = 50% lower
    P99), and its load imbalance must beat them at all (>= 1.0).  The
    section's hard properties (bit-identical same-seed digests, zero
    TraceChecker violations) already failed the bench script itself;
    they are re-surfaced here so one summary carries every signal.
    Returns GitHub-annotation warning strings.
    """
    warnings = []
    section = report.get("skew")
    if not section:
        return ["::warning title=skew gate::report has no `skew` section "
                "(run scripts/run_skew_bench.py)"]
    advantage = section.get("sm_p99_advantage", 0.0)
    if advantage < min_sm_advantage:
        warnings.append(
            f"::warning title=skew gate::SM p99 advantage {advantage:.2f}x "
            f"below floor {min_sm_advantage:.2f}x (best baseline p99 / "
            f"SM p99)")
    imbalance_advantage = section.get("sm_imbalance_advantage", 0.0)
    if imbalance_advantage < 1.0:
        warnings.append(
            f"::warning title=skew gate::SM load imbalance worse than a "
            f"baseline arm ({imbalance_advantage:.2f}x advantage)")
    if not section.get("deterministic", False):
        warnings.append("::warning title=skew gate::skew arms were not "
                        "digest-deterministic")
    for arm, stats in sorted(section.get("arms", {}).items()):
        if stats.get("violations", 0):
            warnings.append(
                f"::warning title=skew gate::arm `{arm}` had "
                f"{stats['violations']} TraceChecker violation(s)")
    return warnings


def main() -> int:
    parser = argparse.ArgumentParser(
        description="warn when events/s regressed vs the baseline")
    parser.add_argument("--report", default="BENCH_sim.json")
    parser.add_argument("--baseline", default="benchmarks/baseline_sim.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="warn when events/s drops by more than this "
                             "fraction (default 0.15)")
    parser.add_argument("--hard", action="store_true",
                        help="exit non-zero on regression instead of warning")
    parser.add_argument("--obs-baseline", default=None,
                        help="frozen no-observability baseline: also gate "
                             "the report against it at --obs-threshold "
                             "(disabled-tracing overhead check)")
    parser.add_argument("--obs-threshold", type=float, default=0.02,
                        help="allowed events/s drop vs --obs-baseline "
                             "(default 0.02 = 2%%)")
    parser.add_argument("--scale-min-publish-ops", type=float, default=None,
                        help="also gate the report's `scale` section: floor "
                             "for best-case control-plane publish ops/s at "
                             "every swept shard count")
    parser.add_argument("--scale-min-frontend-speedup", type=float,
                        default=10.0,
                        help="floor for the frontend indexed-vs-linear "
                             "speedup (only with --scale-min-publish-ops)")
    parser.add_argument("--fluid-min-users-per-sec", type=float, default=None,
                        help="also gate the report's `fluid` section: floor "
                             "for the 10M-user scenario's simulated users "
                             "per wall second")
    parser.add_argument("--pdes-min-speedup", type=float, default=None,
                        help="also gate the report's `pdes` section: floor "
                             "for the region-parallel speedup over the "
                             "single-process serial run (soft — thread "
                             "scaling needs free cores)")
    parser.add_argument("--fuzz-min-specs-per-sec", type=float,
                        default=None,
                        help="also gate the report's `fuzz` section: floor "
                             "for candidate scenarios executed per wall "
                             "second")
    parser.add_argument("--skew-min-sm-advantage", type=float, default=None,
                        help="also gate the report's `skew` section: floor "
                             "for SM's P99 advantage over the better "
                             "baseline arm (e.g. 1.5 = 50%% lower P99)")
    args = parser.parse_args()

    report = json.loads(Path(args.report).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    regressions = compare(report, baseline, args.threshold)

    checked = sorted(set(report.get("figures", {}))
                     & set(baseline.get("figures", {})))
    if not checked:
        print("perf gate: no overlapping figures to compare", file=sys.stderr)
        # Section-only reports (e.g. the fluid-smoke job's) still run the
        # section gates below.
        if args.scale_min_publish_ops is None \
                and args.fluid_min_users_per_sec is None \
                and args.pdes_min_speedup is None \
                and args.fuzz_min_specs_per_sec is None \
                and args.skew_min_sm_advantage is None:
            return 0
    for figure, old, new, ratio in regressions:
        print(f"::warning title=perf regression::{figure}: "
              f"{new:,.0f} events/s vs baseline {old:,.0f} "
              f"({ratio:.2f}x, threshold {1.0 - args.threshold:.2f}x)")
    if not regressions:
        print(f"perf gate: {len(checked)} figure(s) within "
              f"{args.threshold:.0%} of baseline events/s "
              f"({', '.join(checked)})")

    obs_regressions = []
    if args.obs_baseline:
        obs_baseline = json.loads(Path(args.obs_baseline).read_text())
        obs_regressions = compare(report, obs_baseline, args.obs_threshold)
        for figure, old, new, ratio in obs_regressions:
            print(f"::warning title=tracing overhead::{figure}: "
                  f"{new:,.0f} events/s vs no-obs baseline {old:,.0f} "
                  f"({ratio:.2f}x, threshold "
                  f"{1.0 - args.obs_threshold:.2f}x)")
        if not obs_regressions:
            obs_checked = sorted(set(report.get("figures", {}))
                                 & set(obs_baseline.get("figures", {})))
            print(f"tracing-overhead gate: {len(obs_checked)} figure(s) "
                  f"within {args.obs_threshold:.0%} of the no-obs "
                  f"baseline")

    scale_warnings = []
    if args.scale_min_publish_ops is not None:
        scale_warnings = check_scale(report, args.scale_min_publish_ops,
                                     args.scale_min_frontend_speedup)
        for warning in scale_warnings:
            print(warning)
        if not scale_warnings:
            points = len(report.get("scale", {}).get("points", []))
            print(f"scale gate: {points} point(s) above "
                  f"{args.scale_min_publish_ops:,.0f} publish ops/s and "
                  f"{args.scale_min_frontend_speedup:,.1f}x frontend "
                  f"speedup")

    fluid_warnings = []
    if args.fluid_min_users_per_sec is not None:
        fluid_warnings = check_fluid(report, args.fluid_min_users_per_sec)
        for warning in fluid_warnings:
            print(warning)
        if not fluid_warnings:
            scale = report.get("fluid", {}).get("scale", {})
            print(f"fluid gate: {scale.get('users', 0):,} users at "
                  f"{scale.get('users_per_sec', 0.0):,.0f} users/s "
                  f"(floor {args.fluid_min_users_per_sec:,.0f}), "
                  f"under the event-mode fig18 wall")

    pdes_warnings = []
    if args.pdes_min_speedup is not None:
        pdes_warnings = check_pdes(report, args.pdes_min_speedup)
        for warning in pdes_warnings:
            print(warning)
        if not pdes_warnings:
            scale = report.get("pdes", {}).get("scale", {})
            print(f"pdes gate: workers={scale.get('workers', 0)} at "
                  f"{scale.get('speedup_vs_serial', 0.0):.2f}x over serial "
                  f"(floor {args.pdes_min_speedup:.2f}x), parity checks "
                  f"green")

    fuzz_warnings = []
    if args.fuzz_min_specs_per_sec is not None:
        fuzz_warnings = check_fuzz(report, args.fuzz_min_specs_per_sec)
        for warning in fuzz_warnings:
            print(warning)
        if not fuzz_warnings:
            section = report.get("fuzz", {})
            print(f"fuzz gate: {section.get('specs_executed', 0)} specs "
                  f"at {section.get('specs_per_sec', 0.0):,.1f} specs/s "
                  f"(floor {args.fuzz_min_specs_per_sec:,.1f}), "
                  f"{section.get('distinct_coverage_keys', 0)} coverage "
                  f"keys, no violations")

    skew_warnings = []
    if args.skew_min_sm_advantage is not None:
        skew_warnings = check_skew(report, args.skew_min_sm_advantage)
        for warning in skew_warnings:
            print(warning)
        if not skew_warnings:
            section = report.get("skew", {})
            print(f"skew gate: SM p99 advantage "
                  f"{section.get('sm_p99_advantage', 0.0):.2f}x over the "
                  f"best baseline (floor {args.skew_min_sm_advantage:.2f}x), "
                  f"imbalance advantage "
                  f"{section.get('sm_imbalance_advantage', 0.0):.2f}x, "
                  f"digests deterministic")

    if regressions or obs_regressions or scale_warnings \
            or fluid_warnings or pdes_warnings or fuzz_warnings \
            or skew_warnings:
        return 1 if args.hard else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
